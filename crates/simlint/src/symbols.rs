//! Symbol table: every function definition in the workspace, with its
//! impl-block owner, body span and outgoing calls — extracted from the
//! lexer's token stream, no full parser required.
//!
//! The table deliberately over-approximates: a call site records only the
//! callee *name* (plus a one-segment `Type::` qualifier when present), and
//! [`crate::callgraph`] resolves it against every workspace definition
//! with that name. Over-approximation is the safe direction for the lint:
//! it can only classify *more* functions as event-path-reachable, never
//! fewer.
//!
//! Conditionally compiled code is excluded from the event path: a function
//! (or enclosing `impl`/`mod`) behind `#[cfg(test)]` or
//! `#[cfg(feature = ...)]` is by definition not unconditionally on the
//! per-event dispatch path, so reachability neither starts from nor
//! traverses through it (the audit layer is the motivating case).

use crate::lexer::{lex, TokKind, Token};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// The called name (`foo` in `foo(..)`, `bar` in `x.bar(..)` and
    /// `Type::bar(..)`).
    pub name: String,
    /// The path segment immediately before `::name(`, when present —
    /// usually the impl type, sometimes a module.
    pub qualifier: Option<String>,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The surrounding `impl`/`trait` self-type name, when any.
    pub owner: Option<String>,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Inclusive 1-based line span, from the `fn` keyword to the body's
    /// closing brace.
    pub from_line: u32,
    pub to_line: u32,
    /// Behind `#[cfg(test)]` / `#[cfg(feature = ...)]` (directly or via an
    /// enclosing item): never part of the unconditional event path.
    pub cfg_gated: bool,
    /// Marked `// simlint: cold -- <reason>`: declared off the per-event
    /// path (per-window/per-epoch orchestration, setup, teardown).
    /// Reachability neither classifies it as hot nor traverses through
    /// it; the directive requires a justification, checked by the code
    /// lint.
    pub cold: bool,
    /// Every call site in the body.
    pub calls: Vec<CallRef>,
}

/// Given the index of a `{` token, return the index of its matching `}`.
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    if open >= toks.len() || !toks[open].is_punct('{') {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Extract every function definition from `src` (workspace-relative path
/// `relpath` is recorded on each definition). `// simlint: cold` markers
/// in the source are resolved here: each marks the next function
/// definition below it.
pub fn extract(relpath: &str, src: &str) -> Vec<FnDef> {
    let lexed = lex(src);
    let mut defs = extract_tokens(relpath, &lexed.tokens);
    for c in &lexed.comments {
        let is_cold = c
            .text
            .trim()
            .strip_prefix("simlint:")
            .is_some_and(|r| r.trim().starts_with("cold"));
        if !is_cold {
            continue;
        }
        if let Some(d) = defs
            .iter_mut()
            .filter(|d| d.from_line > c.line)
            .min_by_key(|d| d.from_line)
        {
            d.cold = true;
        }
    }
    defs
}

/// Item keywords that consume a pending attribute without being callable.
/// (`const` is absent: it may qualify `const fn`.)
const ITEM_KEYWORDS: [&str; 7] = [
    "struct",
    "enum",
    "union",
    "type",
    "use",
    "static",
    "macro_rules",
];

/// Identifiers that look like calls but are control flow or constructors
/// of `core` types no workspace fn shadows.
const CALL_KEYWORDS: [&str; 9] = [
    "if", "while", "match", "for", "return", "loop", "fn", "move", "unsafe",
];

/// Noise tokens allowed between an attribute and the item it gates.
fn is_item_qualifier(t: &Token) -> bool {
    matches!(&t.kind, TokKind::Ident if
        ["pub", "crate", "in", "self", "super", "async", "extern", "default", "const"]
            .contains(&t.text.as_str()))
        || t.is_punct('(')
        || t.is_punct(')')
        || t.kind == TokKind::Literal
}

pub fn extract_tokens(relpath: &str, toks: &[Token]) -> Vec<FnDef> {
    let mut defs = Vec::new();
    // Enclosing blocks that change context: (end token index, owner, gated).
    let mut regions: Vec<(usize, Option<String>, bool)> = Vec::new();
    // Attribute gating seen since the last item keyword.
    let mut pending_gate = false;
    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(end, _, _)) = regions.last() {
            if i > end {
                regions.pop();
            } else {
                break;
            }
        }
        let inherited_gate = regions.last().is_some_and(|r| r.2);
        let t = &toks[i];

        // Attribute group: note conditional-compilation gates, skip it.
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|t1| t1.is_punct('[')) {
            let mut depth = 0i64;
            let mut k = i + 1;
            let mut saw_cfg = false;
            let mut saw_cond = false;
            let mut saw_not = false;
            while k < toks.len() {
                let tk = &toks[k];
                if tk.is_punct('[') {
                    depth += 1;
                } else if tk.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                saw_cfg |= tk.is_ident("cfg");
                saw_cond |= tk.is_ident("test") || tk.is_ident("feature");
                saw_not |= tk.is_ident("not");
                k += 1;
            }
            // `cfg(not(...))` selects the *default* build: not a gate.
            pending_gate |= saw_cfg && saw_cond && !saw_not;
            i = k + 1;
            continue;
        }

        if t.is_ident("impl") || t.is_ident("trait") || t.is_ident("mod") {
            let gated = pending_gate || inherited_gate;
            pending_gate = false;
            // Find the block's `{` (or `;` for file modules / bare decls),
            // ignoring `>` that closes generics vs `->` arrows.
            let mut k = i + 1;
            let mut open = None;
            while k < toks.len() {
                if toks[k].is_punct('{') {
                    open = Some(k);
                    break;
                }
                if toks[k].is_punct(';') {
                    break;
                }
                k += 1;
            }
            if let Some(open) = open {
                if let Some(end) = matching_brace(toks, open) {
                    let owner = if t.is_ident("mod") {
                        regions.last().and_then(|r| r.1.clone())
                    } else {
                        self_type_name(&toks[i + 1..open])
                    };
                    regions.push((end, owner, gated));
                }
            }
            i = k;
            continue;
        }

        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let gated = pending_gate || inherited_gate;
            pending_gate = false;
            let name = toks[i + 1].text.clone();
            // Scan the signature for the body `{` or a bodiless `;`,
            // skipping bracketed groups (`[u8; 4]` hides a `;`).
            let mut k = i + 2;
            let mut sq = 0i64;
            let mut body = None;
            while k < toks.len() {
                let tk = &toks[k];
                if tk.is_punct('[') {
                    sq += 1;
                } else if tk.is_punct(']') {
                    sq -= 1;
                } else if sq == 0 && tk.is_punct('{') {
                    body = Some(k);
                    break;
                } else if sq == 0 && tk.is_punct(';') {
                    break;
                }
                k += 1;
            }
            if let Some(open) = body {
                if let Some(end) = matching_brace(toks, open) {
                    defs.push(FnDef {
                        name,
                        owner: regions.last().and_then(|r| r.1.clone()),
                        file: relpath.to_string(),
                        from_line: t.line,
                        to_line: toks[end].line,
                        cfg_gated: gated,
                        cold: false,
                        calls: body_calls(&toks[open + 1..end]),
                    });
                }
            }
            i = k;
            continue;
        }

        if matches!(&t.kind, TokKind::Ident if ITEM_KEYWORDS.contains(&t.text.as_str())) {
            pending_gate = false;
        } else if !is_item_qualifier(t) && t.kind == TokKind::Ident {
            // Any other identifier means we are inside expression/type
            // context; a pending attribute no longer applies to a `fn`.
            pending_gate = false;
        }
        i += 1;
    }
    defs
}

/// The self-type name of an `impl`/`trait` header (the tokens between the
/// keyword and the opening brace): the last path segment of the type after
/// `for` when present, otherwise the first path after any leading generics.
fn self_type_name(header: &[Token]) -> Option<String> {
    // Prefer the `for` clause (`impl Trait for Type`), tracking angle
    // depth so `for` inside generic bounds (`impl<T: for<'a> ..>`) is
    // skipped.
    let mut angle = 0i64;
    let mut start = 0usize;
    for (j, t) in header.iter().enumerate() {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>')
            && !header
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('-'))
        {
            angle -= 1;
        } else if angle == 0 && t.is_ident("for") {
            start = j + 1;
        }
    }
    // Skip reference/pointer noise, then take the last segment of the
    // leading path.
    let mut j = start;
    // Also skip a leading generic group when no `for` moved us.
    if header.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i64;
        while j < header.len() {
            if header[j].is_punct('<') {
                depth += 1;
            } else if header[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    while header.get(j).is_some_and(|t| {
        t.is_punct('&')
            || t.kind == TokKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("where")
    }) {
        j += 1;
    }
    let mut name = match header.get(j) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return None,
    };
    while header.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && header.get(j + 2).is_some_and(|t| t.is_punct(':'))
        && header.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
    {
        name = header[j + 3].text.clone();
        j += 3;
    }
    Some(name)
}

/// Every `name(` / `recv.name(` / `Qual::name(` inside a body.
fn body_calls(body: &[Token]) -> Vec<CallRef> {
    let mut calls = Vec::new();
    for (j, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident || !body.get(j + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let qualifier = if j >= 3
            && body[j - 1].is_punct(':')
            && body[j - 2].is_punct(':')
            && body[j - 3].kind == TokKind::Ident
        {
            Some(body[j - 3].text.clone())
        } else {
            None
        };
        calls.push(CallRef {
            name: t.text.clone(),
            qualifier,
        });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(defs: &[FnDef]) -> Vec<(&str, Option<&str>, bool)> {
        defs.iter()
            .map(|d| (d.name.as_str(), d.owner.as_deref(), d.cfg_gated))
            .collect()
    }

    #[test]
    fn extracts_free_and_impl_fns_with_owner() {
        let src = "fn free() { helper(); }\n\
                   struct Foo;\n\
                   impl Foo {\n\
                       pub fn method(&self) -> u32 { self.other(1) }\n\
                   }\n\
                   impl core::fmt::Display for Foo {\n\
                       fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result { write(f) }\n\
                   }\n";
        let defs = extract("a.rs", src);
        assert_eq!(
            names(&defs),
            vec![
                ("free", None, false),
                ("method", Some("Foo"), false),
                ("fmt", Some("Foo"), false),
            ]
        );
        assert_eq!(defs[0].calls.len(), 1);
        assert_eq!(defs[0].calls[0].name, "helper");
    }

    #[test]
    fn cfg_gates_propagate_from_attrs_and_enclosing_items() {
        let src = "#[cfg(feature = \"audit\")]\nfn gated() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn inner() {}\n}\n\
                   #[cfg(not(feature = \"audit\"))]\nfn ungated() {}\n\
                   #[inline]\nfn plain() {}\n";
        let defs = extract("a.rs", src);
        assert_eq!(
            names(&defs),
            vec![
                ("gated", None, true),
                ("inner", None, true),
                ("ungated", None, false),
                ("plain", None, false),
            ]
        );
    }

    #[test]
    fn calls_record_qualifiers_and_skip_keywords() {
        let src = "fn f(v: &[u8; 4]) {\n\
                       if cond() { Routing::apply(v); }\n\
                       x.method_call(3);\n\
                       while other() {}\n\
                   }\n";
        let defs = extract("a.rs", src);
        let calls: Vec<(&str, Option<&str>)> = defs[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("cond", None),
                ("apply", Some("Routing")),
                ("method_call", None),
                ("other", None),
            ]
        );
    }

    #[test]
    fn bodiless_trait_methods_are_skipped() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) { self.decl() }\n}\n";
        let defs = extract("a.rs", src);
        assert_eq!(names(&defs), vec![("with_default", Some("T"), false)]);
    }

    #[test]
    fn line_spans_cover_signature_to_closing_brace() {
        let src = "fn f(\n    a: u32,\n) -> u32 {\n    a\n}\n";
        let defs = extract("a.rs", src);
        assert_eq!((defs[0].from_line, defs[0].to_line), (1, 5));
    }
}
