//! Machine-readable lint report (`tcdsim lint --json`).
//!
//! The JSON is hand-rolled (the workspace takes no serde dependency) and
//! kept flat and stable so CI and external tooling can consume it:
//!
//! ```json
//! {
//!   "ok": false,
//!   "files_scanned": 63,
//!   "code_findings": [ {"rule": "...", "file": "...", "line": 7, "message": "..."} ],
//!   "hot_functions": [ {"file": "...", "name": "drive", "line": 408} ],
//!   "scenarios": [
//!     { "name": "...", "channels": 12, "dependencies": 18, "errors": 1,
//!       "findings": [ {"severity": "error", "check": "fault-route-cycle",
//!                      "message": "...",
//!                      "cycle": [ {"node": "s0", "port": 1}, ... ]} ] }
//!   ]
//! }
//! ```
//!
//! Cycle hops are emitted in dependency order without repeating the first
//! hop — exactly the `TopoDiag::cycle` field.

use std::fmt::Write as _;

use crate::codelint::Diagnostic;
use crate::topolint::{Severity, TopoReport};

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full lint run as a JSON object (one line, trailing newline).
pub fn json_report(
    code: &[Diagnostic],
    files_scanned: usize,
    hot: &[(String, String, u32)],
    scenarios: &[TopoReport],
) -> String {
    let ok = code.is_empty() && scenarios.iter().all(|r| !r.has_errors());
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"ok\":{ok},\"files_scanned\":{files_scanned},\"code_findings\":["
    );
    for (i, d) in code.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            d.rule.name(),
            esc(&d.file),
            d.line,
            esc(&d.message)
        );
    }
    s.push_str("],\"hot_functions\":[");
    for (i, (file, name, line)) in hot.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":\"{}\",\"name\":\"{}\",\"line\":{line}}}",
            esc(file),
            esc(name)
        );
    }
    s.push_str("],\"scenarios\":[");
    for (i, rep) in scenarios.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"channels\":{},\"dependencies\":{},\"errors\":{},\"findings\":[",
            esc(&rep.scenario),
            rep.channels,
            rep.dependencies,
            rep.error_count()
        );
        for (j, d) in rep.diags.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let sev = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = write!(
                s,
                "{{\"severity\":\"{sev}\",\"check\":\"{}\",\"message\":\"{}\",\"cycle\":[",
                d.check,
                esc(&d.message)
            );
            for (k, (node, port)) in d.cycle.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"node\":\"{}\",\"port\":{port}}}", esc(node));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelint::Rule;
    use crate::topolint::TopoDiag;

    #[test]
    fn escaping_and_shape() {
        let code = vec![Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::HotPathPanic,
            message: "uses `.unwrap()` with \"quotes\"\nand a newline".into(),
        }];
        let hot = vec![("a.rs".to_string(), "drive".to_string(), 1)];
        let scen = vec![TopoReport {
            scenario: "ring".into(),
            channels: 6,
            dependencies: 9,
            diags: vec![TopoDiag {
                severity: Severity::Error,
                check: "fault-route-cycle",
                message: "cycle".into(),
                cycle: vec![("s0".into(), 1), ("s1".into(), 2)],
            }],
        }];
        let j = json_report(&code, 2, &hot, &scen);
        assert!(j.starts_with("{\"ok\":false,"), "{j}");
        assert!(j.contains("\\\"quotes\\\"\\nand a newline"), "{j}");
        assert!(
            j.contains("\"cycle\":[{\"node\":\"s0\",\"port\":1},{\"node\":\"s1\",\"port\":2}]"),
            "{j}"
        );
        assert!(j.contains("\"hot_functions\":[{\"file\":\"a.rs\",\"name\":\"drive\",\"line\":1}]"));
    }

    #[test]
    fn clean_run_is_ok() {
        let j = json_report(&[], 10, &[], &[]);
        assert!(j.starts_with("{\"ok\":true,"), "{j}");
    }
}
