//! A minimal Rust tokenizer sufficient for lint rules.
//!
//! This is not a full lexer: it only needs to (1) strip comments and string
//! literals so rule patterns never match inside them, (2) attribute every
//! token to a 1-based line number, and (3) keep comment text around so
//! `// simlint: allow(...)` directives can be recovered with their position.

/// Kind of a lexed token. String literal contents are never exposed, so
/// rule patterns cannot match inside them; simple (unescaped) char
/// literals keep their one-character payload because the spec-conformance
/// pass needs the paper's `'0'`/`'1'`/`'/'` state symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (value irrelevant to the lint).
    Number,
    /// Any single punctuation character.
    Punct(char),
    /// A string or char literal (string contents dropped; simple char
    /// literals keep their payload in `text`).
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Text for `Ident` tokens and unescaped char literals; empty for
    /// everything else.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its starting line (text excludes the `//` / `/*` markers).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognized bytes become `Punct` tokens and
/// unterminated literals/comments simply run to end of input.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| -> char {
        if i < n {
            chars[i]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && at(i + 1) == '/' {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && at(i + 1) == '*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }
        // Raw strings: r"..." / r#"..."# (and byte variants br#"..."#).
        let (raw_prefix_len, is_raw) = raw_string_prefix(&chars, i);
        if is_raw {
            let mut j = i + raw_prefix_len;
            let mut hashes = 0usize;
            while at(j) == '#' {
                hashes += 1;
                j += 1;
            }
            // at(j) == '"' by construction of raw_string_prefix.
            j += 1;
            // Scan for `"` followed by `hashes` hashes.
            loop {
                if j >= n {
                    break;
                }
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && at(j + 1 + k) == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break;
                    }
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Plain string literal (also b"...").
        if c == '"' || (c == 'b' && at(i + 1) == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime. `'\...'` and `'x'` are chars; `'ident`
        // not followed by a closing quote is a lifetime.
        if c == '\'' || (c == 'b' && at(i + 1) == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            if at(q + 1) == '\\' {
                // Escaped char literal: scan to closing quote.
                let mut j = q + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j + 1;
                continue;
            }
            if at(q + 2) == '\'' {
                // 'x' — keep the payload for the spec-conformance pass.
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: at(q + 1).to_string(),
                    line,
                });
                i = q + 3;
                continue;
            }
            // Lifetime: consume the identifier after the quote.
            let mut j = q + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            let mut text = String::new();
            while j < n && is_ident_continue(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (is_ident_continue(chars[j])) {
                j += 1;
            }
            // Fractional part, but not a `..` range.
            if at(j) == '.' && at(j + 1).is_ascii_digit() {
                j += 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Number,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
        });
        i += 1;
    }
    out
}

/// If position `i` starts a raw-string prefix (`r"`, `r#`, `br"`, `br#`),
/// return (length of the `r`/`br` part, true).
fn raw_string_prefix(chars: &[char], i: usize) -> (usize, bool) {
    let at = |k: usize| -> char {
        if k < chars.len() {
            chars[k]
        } else {
            '\0'
        }
    };
    let (skip, c0) = if chars[i] == 'b' {
        (2, at(i + 1))
    } else {
        (1, chars[i])
    };
    if c0 != 'r' {
        return (0, false);
    }
    let mut j = i + skip;
    while at(j) == '#' {
        j += 1;
    }
    if at(j) == '"' {
        (skip, true)
    } else {
        (0, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"thread::spawn "quoted""#;
            let c = 'x';
            let e = '\n';
            fn f<'a>(x: &'a str) {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"spawn".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// simlint: allow(x) -- y\nlet b = 2;\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(lx.comments[0].text.contains("simlint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = lex("fn f<'long>(x: &'long u32) -> u32 { x['a' as usize] }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;\n";
        let lx = lex(src);
        let t_tok = lx.tokens.iter().find(|t| t.is_ident("t")).expect("t token");
        assert_eq!(t_tok.line, 4);
    }
}
