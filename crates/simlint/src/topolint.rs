//! Level 2: static scenario/topology analysis.
//!
//! Loads a scenario (topology + simulation config + route selection),
//! builds the directed buffer-dependency graph the routing tables induce,
//! and reports — before a single event is scheduled —
//!
//! * **deadlock-cycle** (error): cyclic buffer dependencies, i.e. potential
//!   PFC/CBFC deadlock cycles à la DCFIT, printed as full switch/port hop
//!   sequences;
//! * **unreachable** / **bad-override** (error): host pairs with no route,
//!   or explicit route overrides that do not follow physical links;
//! * **pfc-headroom** (error): links whose rate·delay product needs more
//!   PAUSE headroom than the scenario provisions — a guaranteed-drop
//!   configuration that today only fails at runtime via the audit layer;
//! * **route-asymmetry** (warning, D-mod-k only): forward and reverse
//!   concrete paths of a host pair that disagree;
//! * **cbfc-line-rate** (warning): CBFC buffers too small to sustain line
//!   rate across the FCCL update period (`B > C·T_c`, §4.4).
//!
//! Errors gate CI; warnings are informational.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lossless_flowctl::pfc::required_headroom_bytes;
use lossless_netsim::config::FlowControlMode;
use lossless_netsim::routing::{Channel, RouteSelect, Routing};
use lossless_netsim::topology::NodeKind;
use lossless_netsim::{FlowId, NodeId, SimConfig, Topology};

/// Default provisioned PFC headroom above `X_off` per ingress counter —
/// kept equal to the runtime audit layer's default so the static check and
/// the runtime check gate the same configuration.
pub const DEFAULT_PFC_HEADROOM_BYTES: u64 = 96 * 1024;

/// Everything the static analyzer needs to know about one scenario.
pub struct TopoSpec {
    /// Scenario name (used in diagnostics).
    pub name: String,
    /// The physical topology.
    pub topo: Topology,
    /// The simulation configuration (flow control mode, MTU, priorities).
    pub config: SimConfig,
    /// Path-selection discipline the scenario runs with.
    pub select: RouteSelect,
    /// Explicit full node paths overriding shortest-path routing for
    /// specific `(src, dst)` host pairs — the mechanism by which scenarios
    /// (and tests) express non-minimal, possibly up-down-violating routes.
    pub route_overrides: Vec<(NodeId, NodeId, Vec<NodeId>)>,
    /// Provisioned PFC headroom above `X_off`, bytes per ingress counter.
    pub pfc_headroom_bytes: u64,
}

impl TopoSpec {
    /// A spec with no overrides and the audit layer's default headroom.
    pub fn new(
        name: impl Into<String>,
        topo: Topology,
        config: SimConfig,
        select: RouteSelect,
    ) -> TopoSpec {
        TopoSpec {
            name: name.into(),
            topo,
            config,
            select,
            route_overrides: Vec::new(),
            pfc_headroom_bytes: DEFAULT_PFC_HEADROOM_BYTES,
        }
    }
}

/// Diagnostic severity. Only errors affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: legitimate in some configurations.
    Warning,
    /// A configuration that can deadlock, drop, or fail to route.
    Error,
}

/// One finding from the topology analyzer.
#[derive(Debug, Clone)]
pub struct TopoDiag {
    /// Severity (errors gate CI).
    pub severity: Severity,
    /// Stable check identifier, e.g. `deadlock-cycle`.
    pub check: &'static str,
    /// Human-readable description, with switch/port hops where relevant.
    pub message: String,
    /// For cycle findings: the hops as `(node name, egress port)`, in
    /// dependency order, first hop *not* repeated at the end. Empty for
    /// non-cycle checks. This is the machine-readable form `lint --json`
    /// emits and the runtime-watchdog cross-check consumes.
    pub cycle: Vec<(String, u16)>,
}

/// A cycle-free diagnostic.
fn diag(severity: Severity, check: &'static str, message: String) -> TopoDiag {
    TopoDiag {
        severity,
        check,
        message,
        cycle: Vec::new(),
    }
}

impl fmt::Display for TopoDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.check, self.message)
    }
}

/// Analysis result for one scenario.
pub struct TopoReport {
    /// Scenario name.
    pub scenario: String,
    /// Number of directed channels (egress buffers) in the topology.
    pub channels: usize,
    /// Number of edges in the buffer-dependency graph.
    pub dependencies: usize,
    /// All findings, errors first.
    pub diags: Vec<TopoDiag>,
}

impl TopoReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether the scenario fails the gate.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }
}

/// Render a channel as `Name[port]`.
fn chan_name(topo: &Topology, c: Channel) -> String {
    format!("{}[{}]", topo.name(c.0), c.1)
}

/// Run every static check against `spec`.
pub fn analyze(spec: &TopoSpec) -> TopoReport {
    let topo = &spec.topo;
    let routing = Routing::new(topo, spec.select);
    let mut diags = Vec::new();

    // --- Reachability and override validity -----------------------------
    let hosts = topo.hosts();
    let overridden: BTreeSet<(NodeId, NodeId)> = spec
        .route_overrides
        .iter()
        .map(|(s, d, _)| (*s, *d))
        .collect();
    let mut unreachable = Vec::new();
    for &s in &hosts {
        for &d in &hosts {
            if s != d && !overridden.contains(&(s, d)) && routing.candidates(s, d).is_empty() {
                unreachable.push((s, d));
            }
        }
    }
    if !unreachable.is_empty() {
        let (s, d) = unreachable[0];
        diags.push(diag(
            Severity::Error,
            "unreachable",
            format!(
                "{} host pair(s) have no route, e.g. {} -> {}",
                unreachable.len(),
                topo.name(s),
                topo.name(d)
            ),
        ));
    }
    for (s, d, path) in &spec.route_overrides {
        let valid = path.len() >= 2
            && path.first() == Some(s)
            && path.last() == Some(d)
            && path
                .windows(2)
                .all(|w| topo.port_towards(w[0], w[1]).is_some())
            && path[1..path.len() - 1]
                .iter()
                .all(|&n| topo.kind(n) == NodeKind::Switch);
        if !valid {
            diags.push(diag(
                Severity::Error,
                "bad-override",
                format!(
                    "route override {} -> {} does not follow physical links \
                     host-to-host through switches",
                    topo.name(*s),
                    topo.name(*d)
                ),
            ));
        }
    }

    // --- Buffer-dependency graph ----------------------------------------
    // Start from the conservative routing-table view, then add the
    // dependencies the explicit overrides introduce.
    let mut deps: BTreeSet<(Channel, Channel)> = routing.channel_dependencies(topo);
    for (_, _, path) in &spec.route_overrides {
        let chans: Vec<Channel> = path
            .windows(2)
            .filter_map(|w| topo.port_towards(w[0], w[1]).map(|p| (w[0], p)))
            .collect();
        for w in chans.windows(2) {
            deps.insert((w[0], w[1]));
        }
    }
    let channels: usize = (0..topo.node_count())
        .map(|n| topo.ports(NodeId(n as u32)).len())
        .sum();
    let n_deps = deps.len();

    // --- Deadlock cycles (lossless modes only) --------------------------
    // Hop-by-hop back-pressure exists per priority/VL, but data and
    // feedback classes traverse the same pair set (all ordered host
    // pairs), so one graph covers every lossless VL.
    if !spec.config.is_lossy() {
        for cycle in find_cycles(&deps) {
            let mut hops: Vec<String> = cycle.iter().map(|&c| chan_name(topo, c)).collect();
            hops.push(chan_name(topo, cycle[0]));
            diags.push(TopoDiag {
                severity: Severity::Error,
                check: "deadlock-cycle",
                message: format!(
                    "cyclic buffer dependency ({} channels): {} — under {} back-pressure \
                     every hop can wait on the next, a potential deadlock",
                    cycle.len(),
                    hops.join(" -> "),
                    if spec.config.is_ib() {
                        "CBFC credit"
                    } else {
                        "PFC PAUSE"
                    },
                ),
                cycle: cycle
                    .iter()
                    .map(|&(n, p)| (topo.name(n).to_string(), p))
                    .collect(),
            });
        }
    }

    // --- Fault-plan route swaps -----------------------------------------
    // A `RouteChange(Some(set))` fault event atomically rebuilds the
    // routing tables from the pristine baseline and pins every path in
    // `fault_plan.route_sets[set]` (the runtime's `RouteUpdate` handler).
    // Compose each registered set the same way here and re-run the cycle
    // finder: a plan that swaps routes into a cyclic buffer dependency
    // becomes a *static* finding, cross-checked at runtime by the
    // PFC-deadlock watchdog. Paths the runtime would panic on
    // (non-link hops, non-host destination) are flagged instead of
    // applied.
    for (si, paths) in spec.config.fault_plan.route_sets.iter().enumerate() {
        let mut applicable = true;
        for (pi, path) in paths.iter().enumerate() {
            let valid = path.len() >= 2
                && path
                    .windows(2)
                    .all(|w| topo.port_towards(w[0], w[1]).is_some())
                && path.last().is_some_and(|&n| topo.kind(n) == NodeKind::Host);
            if !valid {
                applicable = false;
                diags.push(diag(
                    Severity::Error,
                    "fault-route-invalid",
                    format!(
                        "fault plan route set {si}, path {pi} ({}): does not follow \
                         physical links to a host — the runtime RouteUpdate would panic \
                         installing it",
                        path.iter()
                            .map(|&n| topo.name(n).to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    ),
                ));
            }
        }
        if !applicable || spec.config.is_lossy() {
            continue;
        }
        let mut swapped = routing.clone();
        for (_, _, path) in &spec.route_overrides {
            // Baseline at runtime includes the scenario's overrides;
            // mirror that before pinning the fault set (skipping overrides
            // already reported as bad).
            if path.len() >= 2
                && path
                    .windows(2)
                    .all(|w| topo.port_towards(w[0], w[1]).is_some())
                && path.last().is_some_and(|&n| topo.kind(n) == NodeKind::Host)
            {
                swapped.apply_path(topo, path);
            }
        }
        for path in paths {
            swapped.apply_path(topo, path);
        }
        for cycle in find_cycles(&swapped.channel_dependencies(topo)) {
            let mut hops: Vec<String> = cycle.iter().map(|&c| chan_name(topo, c)).collect();
            hops.push(chan_name(topo, cycle[0]));
            diags.push(TopoDiag {
                severity: Severity::Error,
                check: "fault-route-cycle",
                message: format!(
                    "fault plan route set {si} swaps routing into a cyclic buffer \
                     dependency ({} channels): {} — after the RouteChange fires, every \
                     hop can wait on the next under lossless back-pressure",
                    cycle.len(),
                    hops.join(" -> "),
                ),
                cycle: cycle
                    .iter()
                    .map(|&(n, p)| (topo.name(n).to_string(), p))
                    .collect(),
            });
        }
    }

    // --- Flow-control provisioning --------------------------------------
    // Group links by (rate, delay): the check depends on nothing else.
    let mut link_classes: BTreeMap<(u64, u64), (u64, Channel)> = BTreeMap::new();
    for n in 0..topo.node_count() {
        let node = NodeId(n as u32);
        for (p, l) in topo.ports(node).iter().enumerate() {
            let key = (l.rate.as_bps(), l.delay.as_ps());
            let e = link_classes.entry(key).or_insert((0, (node, p as u16)));
            e.0 += 1;
        }
    }
    match spec.config.flow_control {
        FlowControlMode::Pfc(_) => {
            for (&(bps, _), &(count, example)) in &link_classes {
                let l = topo.link(example.0, example.1);
                let need = required_headroom_bytes(l.rate, l.delay, spec.config.mtu);
                if need > spec.pfc_headroom_bytes {
                    diags.push(diag(
                        Severity::Error,
                        "pfc-headroom",
                        format!(
                            "{} directed link(s) at {} / {:?} delay (e.g. {}) need {} B of \
                             PAUSE headroom above X_off but only {} B are provisioned — \
                             worst-case bursts are guaranteed to drop",
                            count,
                            lossless_flowctl::Rate::from_bps(bps),
                            l.delay,
                            chan_name(topo, example),
                            need,
                            spec.pfc_headroom_bytes
                        ),
                    ));
                }
            }
        }
        FlowControlMode::Cbfc(cbfc) => {
            for (&(bps, _), &(count, example)) in &link_classes {
                let l = topo.link(example.0, example.1);
                let slack = l.rate.bytes_in(l.delay);
                if !cbfc.sustains_line_rate(bps, slack) {
                    diags.push(diag(
                        Severity::Warning,
                        "cbfc-line-rate",
                        format!(
                            "{} directed link(s) at {} / {:?} delay (e.g. {}): CBFC buffer \
                             ({} blocks) cannot sustain line rate across the {:?} FCCL \
                             period (B > C*T_c violated) — uncongested senders will stall \
                             for credits",
                            count,
                            lossless_flowctl::Rate::from_bps(bps),
                            l.delay,
                            chan_name(topo, example),
                            cbfc.buffer_blocks,
                            cbfc.update_period
                        ),
                    ));
                }
            }
        }
        FlowControlMode::Lossy { .. } => {}
    }

    // --- Routing asymmetry (D-mod-k only) -------------------------------
    // BFS shortest-path candidate DAGs on symmetric links are provably
    // reverse-symmetric, and per-flow ECMP hashes forward and reverse
    // directions independently by design; only the deterministic D-mod-k
    // selection is expected to yield mirrored concrete paths, so only
    // there is a mismatch worth surfacing.
    if spec.select == RouteSelect::DModK {
        let mut asymmetric = Vec::new();
        for (i, &s) in hosts.iter().enumerate() {
            for &d in hosts.iter().skip(i + 1) {
                if overridden.contains(&(s, d))
                    || overridden.contains(&(d, s))
                    || routing.candidates(s, d).is_empty()
                    || routing.candidates(d, s).is_empty()
                {
                    continue;
                }
                let fwd: Vec<NodeId> = routing
                    .path(topo, s, d, FlowId(0))
                    .iter()
                    .map(|&(n, _)| n)
                    .chain([d])
                    .collect();
                let mut rev: Vec<NodeId> = routing
                    .path(topo, d, s, FlowId(0))
                    .iter()
                    .map(|&(n, _)| n)
                    .chain([s])
                    .collect();
                rev.reverse();
                if fwd != rev {
                    asymmetric.push((s, d));
                }
            }
        }
        if !asymmetric.is_empty() {
            let (s, d) = asymmetric[0];
            diags.push(diag(
                Severity::Warning,
                "route-asymmetry",
                format!(
                    "{} host pair(s) take different forward and reverse D-mod-k paths, \
                     e.g. {} <-> {} — congestion signals (CNP/BECN) will not retrace \
                     the data path",
                    asymmetric.len(),
                    topo.name(s),
                    topo.name(d)
                ),
            ));
        }
    }

    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.check.cmp(b.check))
    });
    TopoReport {
        scenario: spec.name.clone(),
        channels,
        dependencies: n_deps,
        diags,
    }
}

/// Find cyclic buffer dependencies: one representative cycle per
/// non-trivial strongly connected component, deterministically (smallest
/// channel first, shortest cycle via BFS).
fn find_cycles(deps: &BTreeSet<(Channel, Channel)>) -> Vec<Vec<Channel>> {
    let mut adj: BTreeMap<Channel, Vec<Channel>> = BTreeMap::new();
    for &(a, b) in deps {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    let sccs = tarjan_sccs(&adj);
    let mut cycles = Vec::new();
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let members: BTreeSet<Channel> = scc.iter().copied().collect();
        let start = *members.iter().next().expect("non-empty SCC");
        // BFS from `start` back to `start`, restricted to the SCC.
        let mut prev: BTreeMap<Channel, Channel> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut found = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in adj.get(&u).map(Vec::as_slice).unwrap_or(&[]) {
                if v == start {
                    prev.insert(start, u);
                    found = Some(());
                    break 'bfs;
                }
                if members.contains(&v) && !prev.contains_key(&v) {
                    prev.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        if found.is_some() {
            let mut cycle = vec![start];
            let mut cur = prev[&start];
            while cur != start {
                cycle.push(cur);
                cur = prev[&cur];
            }
            cycle.reverse();
            // `reverse` leaves `start` at the end; rotate it to the front.
            let pos = cycle
                .iter()
                .position(|&c| c == start)
                .expect("start in cycle");
            cycle.rotate_left(pos);
            cycles.push(cycle);
        }
    }
    cycles
}

/// Iterative Tarjan strongly-connected components over a deterministic
/// adjacency map. Returns SCCs in a deterministic order.
fn tarjan_sccs(adj: &BTreeMap<Channel, Vec<Channel>>) -> Vec<Vec<Channel>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let keys: Vec<Channel> = adj.keys().copied().collect();
    let idx_of: BTreeMap<Channel, usize> = keys.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut state = vec![NodeState::default(); keys.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS stack: (node, next child position).
    for root in 0..keys.len() {
        if state[root].index.is_some() {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = call.last() {
            if child == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            let succs = &adj[&keys[v]];
            if child < succs.len() {
                call.last_mut().expect("non-empty call stack").1 += 1;
                let w = idx_of[&succs[child]];
                if state[w].index.is_none() {
                    call.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.expect("indexed"));
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(low);
                }
                if Some(state[v].lowlink) == state[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        state[w].on_stack = false;
                        scc.push(keys[w]);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use lossless_flowctl::{Rate, SimDuration, SimTime};
    use lossless_netsim::topology::{dumbbell, fat_tree};

    fn cee(end_us: u64) -> SimConfig {
        SimConfig::cee_baseline(SimTime::from_us(end_us))
    }

    #[test]
    fn dumbbell_is_clean() {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let spec = TopoSpec::new("dumbbell", db.topo, cee(100), RouteSelect::Ecmp);
        let rep = analyze(&spec);
        assert!(!rep.has_errors(), "{:?}", rep.diags);
        assert!(rep.dependencies > 0);
    }

    #[test]
    fn fat_tree_is_deadlock_free_under_updown_routing() {
        let ft = fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(4));
        let spec = TopoSpec::new("ft4", ft.topo, cee(100), RouteSelect::DModK);
        let rep = analyze(&spec);
        assert!(!rep.has_errors(), "{:?}", rep.diags);
    }

    #[test]
    fn triangle_with_wraparound_overrides_reports_exact_cycle() {
        // Three switches in a triangle, one host each. Shortest-path
        // routing is deadlock-free here; the overrides force every pair
        // "the long way round", creating the classic cyclic buffer
        // dependency s0->s1 => s1->s2 => s2->s0 => s0->s1.
        let mut b = Topology::builder();
        let s: Vec<NodeId> = (0..3).map(|i| b.switch(format!("s{i}"))).collect();
        let h: Vec<NodeId> = (0..3).map(|i| b.host(format!("h{i}"))).collect();
        let r = Rate::from_gbps(40);
        let d = SimDuration::from_us(4);
        for i in 0..3 {
            b.link(h[i], s[i], r, d);
            b.link(s[i], s[(i + 1) % 3], r, d);
        }
        let topo = b.build();
        let mut spec = TopoSpec::new("triangle", topo, cee(100), RouteSelect::Ecmp);
        spec.route_overrides = vec![
            (h[0], h[2], vec![h[0], s[0], s[1], s[2], h[2]]),
            (h[1], h[0], vec![h[1], s[1], s[2], s[0], h[0]]),
            (h[2], h[1], vec![h[2], s[2], s[0], s[1], h[1]]),
        ];
        let rep = analyze(&spec);
        let cycles: Vec<&TopoDiag> = rep
            .diags
            .iter()
            .filter(|d| d.check == "deadlock-cycle")
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", rep.diags);
        let msg = &cycles[0].message;
        assert!(
            msg.contains("s0[") && msg.contains("s1[") && msg.contains("s2["),
            "{msg}"
        );
    }

    /// A 3-switch ring, one host per switch: `(topo, switches, hosts)`.
    fn ring3() -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        let mut b = Topology::builder();
        let s: Vec<NodeId> = (0..3).map(|i| b.switch(format!("s{i}"))).collect();
        let h: Vec<NodeId> = (0..3).map(|i| b.host(format!("h{i}"))).collect();
        let r = Rate::from_gbps(40);
        let d = SimDuration::from_us(4);
        for i in 0..3 {
            b.link(h[i], s[i], r, d);
            b.link(s[i], s[(i + 1) % 3], r, d);
        }
        (b.build(), s, h)
    }

    #[test]
    fn fault_plan_route_swap_into_a_cycle_is_a_static_error() {
        let (topo, s, h) = ring3();
        let mut cfg = cee(100);
        // The deadlock_ring construction: every host two hops clockwise.
        cfg.fault_plan.route_sets.push(
            (0..3)
                .map(|i| vec![h[i], s[i], s[(i + 1) % 3], s[(i + 2) % 3], h[(i + 2) % 3]])
                .collect(),
        );
        cfg.fault_plan.route_change(SimTime::ZERO, Some(0));
        let spec = TopoSpec::new("ring-swap", topo.clone(), cfg, RouteSelect::Ecmp);
        let rep = analyze(&spec);
        // Baseline shortest paths on an odd ring are acyclic...
        assert!(
            !rep.diags.iter().any(|d| d.check == "deadlock-cycle"),
            "{:?}",
            rep.diags
        );
        // ...but the composed fault set is the classic 3-cycle.
        let cyc: Vec<&TopoDiag> = rep
            .diags
            .iter()
            .filter(|d| d.check == "fault-route-cycle")
            .collect();
        assert_eq!(cyc.len(), 1, "{:?}", rep.diags);
        assert_eq!(cyc[0].cycle.len(), 3);
        let want: BTreeSet<(String, u16)> = (0..3)
            .map(|i| {
                let p = topo.port_towards(s[i], s[(i + 1) % 3]).expect("ring link");
                (format!("s{i}"), p)
            })
            .collect();
        let got: BTreeSet<(String, u16)> = cyc[0].cycle.iter().cloned().collect();
        assert_eq!(got, want);
        assert!(rep.has_errors());
    }

    #[test]
    fn fault_plan_path_off_the_physical_links_is_flagged_not_applied() {
        let (topo, s, h) = ring3();
        let mut cfg = cee(100);
        // h0 -> s0 -> h1 skips the link structure: s0 has no link to h1.
        cfg.fault_plan.route_sets.push(vec![vec![h[0], s[0], h[1]]]);
        cfg.fault_plan.route_change(SimTime::ZERO, Some(0));
        let spec = TopoSpec::new("ring-bad-swap", topo, cfg, RouteSelect::Ecmp);
        let rep = analyze(&spec);
        assert!(
            rep.diags.iter().any(|d| d.check == "fault-route-invalid"),
            "{:?}",
            rep.diags
        );
        assert!(!rep.diags.iter().any(|d| d.check == "fault-route-cycle"));
        assert!(rep.has_errors());
    }

    #[test]
    fn baseline_cycle_diag_carries_structured_hops() {
        let (topo, s, h) = ring3();
        let mut spec = TopoSpec::new("triangle", topo, cee(100), RouteSelect::Ecmp);
        spec.route_overrides = vec![
            (h[0], h[2], vec![h[0], s[0], s[1], s[2], h[2]]),
            (h[1], h[0], vec![h[1], s[1], s[2], s[0], h[0]]),
            (h[2], h[1], vec![h[2], s[2], s[0], s[1], h[1]]),
        ];
        let rep = analyze(&spec);
        let cyc = rep
            .diags
            .iter()
            .find(|d| d.check == "deadlock-cycle")
            .expect("cycle reported");
        assert_eq!(cyc.cycle.len(), 3, "{:?}", cyc.cycle);
        assert!(cyc.cycle.iter().all(|(n, _)| n.starts_with('s')));
    }

    #[test]
    fn disconnected_hosts_are_reported_unreachable() {
        let mut b = Topology::builder();
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let h1 = b.host("h1");
        let h2 = b.host("h2");
        let r = Rate::from_gbps(40);
        let d = SimDuration::from_us(4);
        b.link(h1, s1, r, d);
        b.link(h2, s2, r, d);
        let spec = TopoSpec::new("split", b.build(), cee(100), RouteSelect::Ecmp);
        let rep = analyze(&spec);
        assert!(rep.diags.iter().any(|d| d.check == "unreachable"));
        assert!(rep.has_errors());
    }

    #[test]
    fn long_delay_links_violate_pfc_headroom() {
        let db = dumbbell(Rate::from_gbps(100), SimDuration::from_us(100));
        let spec = TopoSpec::new("wan-dumbbell", db.topo, cee(100), RouteSelect::Ecmp);
        let rep = analyze(&spec);
        assert!(
            rep.diags.iter().any(|d| d.check == "pfc-headroom"),
            "{:?}",
            rep.diags
        );
        assert!(rep.has_errors());
    }
}
