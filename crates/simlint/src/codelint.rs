//! Level 1: semantic workspace lint (token rules + call-graph reachability).
//!
//! Enforces project rules that clippy cannot express:
//!
//! - `hash-collections`: no `HashMap`/`HashSet` in simulation-state code —
//!   iteration order feeds event scheduling, so BTree collections are
//!   required for deterministic, bit-identical runs.
//! - `wall-clock`: no `Instant`/`SystemTime` outside the parallel harness
//!   and bench code; simulation logic must consume virtual time only.
//! - `thread-spawn`: no `thread::spawn`/`thread::scope` outside the harness;
//!   all parallelism goes through the deterministic work queue.
//! - `hot-path-panic`: no `.unwrap()`, `.expect()` or slice indexing on the
//!   event path without an inline justification.
//! - `hot-path-alloc`: no heap allocation (`vec!`, `format!`, `Box::new`,
//!   `collect`, `to_string`, …) on the event path without justification.
//! - `time-arith`: no unchecked `+`/`-`/`*` on raw `as_ps()` picosecond
//!   `u64`s on the event path — ps values run against the timing wheel's
//!   2^49 ps horizon, so raw products overflow silently; stay in
//!   `SimTime`/`SimDuration`, widen to `u128`, or use checked/saturating ops.
//! - `forbid-unsafe`: every non-vendored crate root carries
//!   `#![forbid(unsafe_code)]`.
//! - `prof-leak`: no wall-clock profiler value (`prof::` paths, the
//!   engine's `.profiler` field) consumed by simulation-state code —
//!   declaring, storing and statement-position calls are fine, but a
//!   profiler value feeding an expression (`let x = self.profiler...`,
//!   `if self.profiler...`) needs a sanctioned-wiring justification.
//! - `bad-allow`: malformed or unknown `// simlint: allow(...)` directives.
//! - `stale-allow`: a well-formed directive that no longer suppresses any
//!   finding — dead annotations must be pruned, not accumulated.
//! - `spec-mismatch`: the Fig. 6 state machine diverges from the committed
//!   `fig6.spec` table (see [`crate::spec`]).
//!
//! The *hot path* is not a hand-maintained file list: it is every function
//! reachable in the call graph from the engine's dispatch loop
//! ([`HOT_ROOT`], `Simulator::drive`) — see [`crate::symbols`] and
//! [`crate::callgraph`]. `#[cfg(..)]`-gated code (the audit layer, test
//! modules) is by definition not on the unconditional event path and is
//! excluded.
//!
//! Suppression syntax (reason is mandatory):
//!
//! ```text
//! // simlint: allow(rule) -- reason
//! ```
//!
//! Placed at the end of a code line it covers that line; on its own line it
//! covers the next code line, or — when that line starts a `fn` item — the
//! whole function body, mirroring the scoping of Rust's `#[allow]`.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::callgraph;
use crate::lexer::{lex, Comment, TokKind, Token};
use crate::symbols::{self, matching_brace};

/// The call-graph reachability root: the engine's single event dispatch
/// loop (`Simulator::drive`), which every `run*` entry point funnels
/// through.
pub const HOT_ROOT: &str = "drive";

/// Lint rules, in stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashCollections,
    WallClock,
    ThreadSpawn,
    HotPathPanic,
    HotPathAlloc,
    TimeArith,
    ProfLeak,
    ForbidUnsafe,
    BadAllow,
    StaleAllow,
    SpecMismatch,
}

pub const ALL_RULES: [Rule; 11] = [
    Rule::HashCollections,
    Rule::WallClock,
    Rule::ThreadSpawn,
    Rule::HotPathPanic,
    Rule::HotPathAlloc,
    Rule::TimeArith,
    Rule::ProfLeak,
    Rule::ForbidUnsafe,
    Rule::BadAllow,
    Rule::StaleAllow,
    Rule::SpecMismatch,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::TimeArith => "time-arith",
            Rule::ProfLeak => "prof-leak",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::BadAllow => "bad-allow",
            Rule::StaleAllow => "stale-allow",
            Rule::SpecMismatch => "spec-mismatch",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One structured finding, rendered as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// How the lint treats a file, derived purely from its workspace-relative
/// path (always with `/` separators).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Vendored dependency stubs, lint fixtures, build output: not ours.
    pub skip: bool,
    /// Simulation-state code: BTree collections required.
    pub state_code: bool,
    /// May read wall-clock time (harness + bench).
    pub wall_clock_ok: bool,
    /// May spawn OS threads (harness only).
    pub threads_ok: bool,
    /// Crate root that must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// Integration tests / benches: linted, but their function definitions
    /// stay out of the call graph (they cannot be on the event path).
    pub test_code: bool,
}

const VENDORED_PREFIXES: [&str; 3] = ["crates/rand/", "crates/proptest/", "crates/criterion/"];

/// Crates whose code holds or mutates simulation state.
const STATE_PREFIXES: [&str; 9] = [
    "crates/netsim/",
    "crates/flowctl/",
    "crates/cc/",
    "crates/core/",
    "crates/workloads/",
    "crates/stats/",
    "crates/obs/",
    "crates/simlint/",
    "src/",
];

impl FileClass {
    pub fn classify(relpath: &str) -> FileClass {
        let mut fc = FileClass::default();
        if VENDORED_PREFIXES.iter().any(|p| relpath.starts_with(p))
            || relpath.starts_with("target/")
            || relpath.contains("/fixtures/")
        {
            fc.skip = true;
            return fc;
        }
        fc.state_code =
            STATE_PREFIXES.iter().any(|p| relpath.starts_with(p)) || relpath.starts_with("tests/");
        // `crates/obs/src/prof.rs` is the engine's sanctioned wall-clock
        // window: the self-profiler only *reads* `Instant`, and the
        // `prof-leak` rule polices that none of its values reach
        // simulation state.
        fc.wall_clock_ok = relpath == "src/harness.rs"
            || relpath == "crates/obs/src/prof.rs"
            || relpath.starts_with("crates/bench/");
        // `crates/netsim/src/par.rs` is the conservative-parallel
        // executor: the only engine file allowed to spawn threads, and
        // only scoped per-epoch worker threads at that.
        fc.threads_ok = relpath == "src/harness.rs" || relpath == "crates/netsim/src/par.rs";
        fc.crate_root = relpath == "src/lib.rs"
            || (relpath.starts_with("crates/")
                && relpath.ends_with("/src/lib.rs")
                && relpath.matches('/').count() == 3);
        fc.test_code = relpath.starts_with("tests/")
            || relpath.contains("/tests/")
            || relpath.contains("/benches/")
            || relpath.starts_with("src/bin/");
        fc
    }
}

/// A parsed `// simlint: allow(rule, ...) -- reason` directive, with a
/// suppression-hit counter driving the `stale-allow` rule.
struct AllowDirective {
    rules: Vec<Rule>,
    /// The directive's own source line (for stale-allow reporting).
    line: u32,
    /// Inclusive 1-based line range this directive suppresses.
    from_line: u32,
    to_line: u32,
    /// Findings this directive suppressed during the scan.
    hits: u32,
}

/// Keywords that may legitimately be followed by `[` starting an array
/// expression rather than an indexing operation.
const INDEX_EXEMPT_KEYWORDS: [&str; 12] = [
    "let", "mut", "in", "if", "else", "match", "return", "as", "ref", "move", "break", "while",
];

/// Types whose `::new`/`::with_capacity`/`::from` constructors allocate.
const ALLOC_TYPES: [&str; 7] = [
    "Box", "Vec", "VecDeque", "String", "BTreeMap", "BTreeSet", "Rc",
];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Methods that allocate their result.
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];
/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Suppress a finding if a directive covers it, counting the hit.
fn try_allow(allows: &mut [AllowDirective], rule: Rule, line: u32) -> bool {
    for a in allows.iter_mut() {
        if a.rules.contains(&rule) && line >= a.from_line && line <= a.to_line {
            a.hits += 1;
            return true;
        }
    }
    false
}

/// Lint a set of sources as one workspace: build the symbol table over the
/// non-test simulation-state files, derive the hot set by reachability
/// from [`HOT_ROOT`], then run every token rule per file. Each element is
/// `(workspace-relative path, source text)`. This is the unit both
/// [`lint_workspace`] and the fixture tests drive.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Diagnostic> {
    let mut defs = Vec::new();
    for (rel, src) in files {
        let fc = FileClass::classify(rel);
        if fc.skip || !fc.state_code || fc.test_code {
            continue;
        }
        defs.extend(symbols::extract(rel, src));
    }
    let hot = callgraph::hot_ranges(&defs, HOT_ROOT);
    let mut diags = Vec::new();
    for (rel, src) in files {
        let ranges = hot.get(rel.as_str()).map(Vec::as_slice).unwrap_or(&[]);
        diags.extend(lint_one(rel, src, ranges));
    }
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    diags
}

/// Lint a single file in isolation (no cross-file call graph: the hot set
/// is whatever is reachable from a [`HOT_ROOT`] defined in this file).
pub fn lint_file(relpath: &str, src: &str) -> Vec<Diagnostic> {
    lint_sources(&[(relpath.to_string(), src.to_string())])
}

/// The per-file token scan. `hot_ranges` are the line spans of the
/// event-path-reachable functions in this file.
fn lint_one(relpath: &str, src: &str, hot_ranges: &[(u32, u32)]) -> Vec<Diagnostic> {
    let fc = FileClass::classify(relpath);
    if fc.skip {
        return Vec::new();
    }
    let lexed = lex(src);
    let mut diags = Vec::new();
    let (mut allows, mut bad_allow_diags) =
        parse_allow_directives(relpath, &lexed.comments, &lexed.tokens);
    diags.append(&mut bad_allow_diags);

    let hot = |line: u32| hot_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    macro_rules! push {
        ($rule:expr, $line:expr, $msg:expr) => {
            if !try_allow(&mut allows, $rule, $line) {
                diags.push(Diagnostic {
                    file: relpath.to_string(),
                    line: $line,
                    rule: $rule,
                    message: $msg,
                });
            }
        };
    }

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if fc.state_code && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            push!(
                Rule::HashCollections,
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; simulation-state code must \
                     use `BTree{}` so runs stay bit-identical",
                    t.text,
                    &t.text[4..]
                )
            );
        }
        if !fc.wall_clock_ok && (t.is_ident("Instant") || t.is_ident("SystemTime")) {
            push!(
                Rule::WallClock,
                t.line,
                format!(
                    "`{}` reads the wall clock; simulation logic must only consume virtual \
                     `SimTime` (wall-clock access is confined to src/harness.rs and bench code)",
                    t.text
                )
            );
        }
        if !fc.threads_ok
            && t.is_ident("thread")
            && matches!(toks.get(i + 1), Some(t1) if t1.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t2) if t2.is_punct(':'))
            && matches!(toks.get(i + 3),
                Some(t3) if t3.is_ident("spawn") || t3.is_ident("scope") || t3.is_ident("Builder"))
        {
            push!(
                Rule::ThreadSpawn,
                t.line,
                "OS threads outside src/harness.rs break deterministic scheduling; route \
                 parallelism through the harness work queue"
                    .to_string()
            );
        }
        // --- prof-leak -----------------------------------------------
        // Simulation-state code may *hold* the wall-clock profiler and
        // call it in statement position, but a profiler value feeding an
        // expression is a wall-clock leak into simulation state.
        if fc.state_code
            && !fc.test_code
            && !fc.wall_clock_ok
            && !relpath.starts_with("crates/obs/")
            && t.kind == TokKind::Ident
            && (t.text == "prof" || t.text == "profiler")
        {
            let field_access = i > 0 && toks[i - 1].is_punct('.');
            let path_seg = matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'));
            // `prof::Uppercase` is a type path (`prof::ProfConfig`,
            // `prof::NodeClass`): naming a profiler *type* carries no
            // wall-clock data, only `.profiler`/`.prof` field reads and
            // lowercase value paths do.
            let type_path = path_seg
                && matches!(toks.get(i + 3), Some(n) if n.kind == TokKind::Ident
                    && n.text.starts_with(|c: char| c.is_ascii_uppercase()));
            if (field_access || (path_seg && !type_path)) && prof_value_consumed(toks, i) {
                push!(
                    Rule::ProfLeak,
                    t.line,
                    "a wall-clock profiler value feeds simulation-state code; the \
                     self-profiler must stay read-only — declare, store or call it in \
                     statement position, and justify sanctioned engine wiring with \
                     `// simlint: allow(prof-leak) -- <why no wall-clock value crosses>`"
                        .to_string()
                );
            }
        }
        if hot(t.line) {
            // --- hot-path-panic ----------------------------------------
            if (t.is_ident("unwrap") || t.is_ident("expect")) && i > 0 && toks[i - 1].is_punct('.')
            {
                push!(
                    Rule::HotPathPanic,
                    t.line,
                    format!(
                        "`.{}()` can panic in an event-path-reachable function; handle the \
                         case or add `// simlint: allow(hot-path-panic) -- <why it cannot fail>`",
                        t.text
                    )
                );
            }
            if t.is_punct('[') && i > 0 && is_index_base(&toks[i - 1]) {
                push!(
                    Rule::HotPathPanic,
                    t.line,
                    "slice indexing can panic in an event-path-reachable function; use \
                     `get()` or add `// simlint: allow(hot-path-panic) -- <why the index is \
                     in bounds>`"
                        .to_string()
                );
            }
            // --- hot-path-alloc ----------------------------------------
            if t.kind == TokKind::Ident
                && ALLOC_MACROS.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('!'))
            {
                push!(
                    Rule::HotPathAlloc,
                    t.line,
                    format!(
                        "`{}!` allocates on the event path; preallocate outside the loop or \
                         add `// simlint: allow(hot-path-alloc) -- <why the allocation is \
                         unavoidable or off the steady-state path>`",
                        t.text
                    )
                );
            }
            if t.kind == TokKind::Ident && ALLOC_TYPES.contains(&t.text.as_str()) {
                if let Some(ctor) = alloc_ctor_after(toks, i) {
                    push!(
                        Rule::HotPathAlloc,
                        t.line,
                        format!(
                            "`{}::{ctor}` allocates on the event path; preallocate and \
                             reuse, or justify with `// simlint: allow(hot-path-alloc) -- \
                             <reason>`",
                            t.text
                        )
                    );
                }
            }
            if t.kind == TokKind::Ident
                && ALLOC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('(') || n.is_punct(':'))
            {
                push!(
                    Rule::HotPathAlloc,
                    t.line,
                    format!(
                        "`.{}()` allocates on the event path; preallocate and reuse, or \
                         justify with `// simlint: allow(hot-path-alloc) -- <reason>`",
                        t.text
                    )
                );
            }
            // --- time-arith --------------------------------------------
            if t.is_ident("as_ps")
                && matches!(toks.get(i + 1), Some(a) if a.is_punct('('))
                && matches!(toks.get(i + 2), Some(b) if b.is_punct(')'))
            {
                let next_op = matches!(toks.get(i + 3),
                    Some(n) if n.is_punct('+') || n.is_punct('-') || n.is_punct('*'));
                let prev_op = i >= 3
                    && toks[i - 1].is_punct('.')
                    && is_index_base(&toks[i - 2])
                    && (toks[i - 3].is_punct('+')
                        || toks[i - 3].is_punct('-')
                        || toks[i - 3].is_punct('*'));
                if next_op || prev_op {
                    push!(
                        Rule::TimeArith,
                        t.line,
                        "unchecked arithmetic on a raw `as_ps()` u64: picosecond values run \
                         against the wheel's 2^49 ps horizon, so sums/products can overflow \
                         silently — stay in SimTime/SimDuration, widen to u128, use \
                         checked/saturating ops, or justify with `// simlint: \
                         allow(time-arith) -- <why it cannot overflow>`"
                            .to_string()
                    );
                }
            }
        }
    }

    if fc.crate_root && !has_forbid_unsafe(toks) && !try_allow(&mut allows, Rule::ForbidUnsafe, 1) {
        // Suppression check uses line 1 (the attribute belongs at the top).
        diags.push(Diagnostic {
            file: relpath.to_string(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            message: "crate root is missing `#![forbid(unsafe_code)]`; every non-vendored \
                      crate in this workspace must forbid unsafe code"
                .to_string(),
        });
    }

    // A directive that suppressed nothing is dead weight — and, worse,
    // suggests protection that does not exist. Prune it.
    for a in &allows {
        if a.hits == 0 {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line: a.line,
                rule: Rule::StaleAllow,
                message: format!(
                    "stale `allow({})`: it no longer suppresses any finding in its scope \
                     (lines {}..={}); delete the directive",
                    a.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    a.from_line,
                    a.to_line
                ),
            });
        }
    }

    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// If the tokens after an allocating type name at `i` spell
/// `::new(`/`::with_capacity(`/`::from(` — optionally through a turbofish
/// (`Vec::<u8>::new(`) — return the constructor name.
fn alloc_ctor_after(toks: &[Token], i: usize) -> Option<&str> {
    let mut j = i + 1;
    if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
        return None;
    }
    j += 2;
    if toks.get(j)?.is_punct('<') {
        let mut depth = 0i64;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        j += 1;
        if !(toks.get(j)?.is_punct(':') && toks.get(j + 1)?.is_punct(':')) {
            return None;
        }
        j += 2;
    }
    let c = toks.get(j)?;
    if c.kind == TokKind::Ident
        && ALLOC_CTORS.contains(&c.text.as_str())
        && toks.get(j + 1)?.is_punct('(')
    {
        Some(&c.text)
    } else {
        None
    }
}

/// True if a `[` directly after this token is an indexing operation.
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokKind::Ident => !INDEX_EXEMPT_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    }
}

/// Whether the `prof`/`profiler` reference at token `i` is *consumed* by
/// surrounding code, as opposed to declared, stored or called in statement
/// position. Walks left over `a.b` / `a::b` chains to the expression head
/// and inspects the token before it: statement boundaries (`;`, `{`, `}`),
/// type/field positions (a single `:`), generics (`<`, `>`) and item
/// declarations (`use`/`pub`/`mod`) don't consume; anything else — `=`,
/// `(`, `,`, `if`, `while`, `return`, operators — feeds the value onward.
fn prof_value_consumed(toks: &[Token], i: usize) -> bool {
    let mut h = i;
    loop {
        if h >= 2 && toks[h - 1].is_punct('.') && toks[h - 2].kind == TokKind::Ident {
            h -= 2;
        } else if h >= 3
            && toks[h - 1].is_punct(':')
            && toks[h - 2].is_punct(':')
            && toks[h - 3].kind == TokKind::Ident
        {
            h -= 3;
        } else {
            break;
        }
    }
    if h == 0 {
        return false; // head starts the file: an item declaration
    }
    let prev = &toks[h - 1];
    if prev.is_punct(';')
        || prev.is_punct('{')
        || prev.is_punct('}')
        || prev.is_punct('<')
        || prev.is_punct('>')
    {
        return false;
    }
    if prev.is_punct(':') {
        // a lone `:` is a type annotation or struct-field position; a
        // second `:` before it would have been folded into the chain walk
        return h >= 2 && toks[h - 2].is_punct(':');
    }
    if prev.kind == TokKind::Ident {
        return !matches!(prev.text.as_str(), "use" | "pub" | "mod");
    }
    true
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Parse every `simlint:` comment into a scoped directive, emitting
/// `bad-allow` diagnostics for malformed ones.
fn parse_allow_directives(
    relpath: &str,
    comments: &[Comment],
    toks: &[Token],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("simlint:") else {
            continue;
        };
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line: c.line,
                rule: Rule::BadAllow,
                message: msg,
            });
        };
        let rest = rest.trim();
        // `simlint: cold -- reason`: consumed by the symbol table (the
        // next `fn` below is excluded from hot-path reachability); here
        // only the justification is enforced.
        if let Some(after) = rest.strip_prefix("cold") {
            let reason_ok = after
                .trim()
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().is_empty());
            if !reason_ok {
                bad("cold directive is missing a justification; write \
                     `simlint: cold -- <why this never runs per event>`"
                    .to_string());
            }
            continue;
        }
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(format!(
                "unrecognized simlint directive `{text}`; expected \
                 `simlint: allow(rule) -- reason` or `simlint: cold -- reason`"
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unterminated rule list in allow directive".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut unknown = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    bad(format!(
                        "unknown rule `{name}` in allow directive (known rules: {})",
                        ALL_RULES.map(Rule::name).join(", ")
                    ));
                    unknown = true;
                }
            }
        }
        if unknown {
            continue;
        }
        let after = rest[close + 1..].trim();
        let reason_ok = after
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            bad("allow directive is missing a justification; write \
                 `simlint: allow(rule) -- reason`"
                .to_string());
            continue;
        }
        let (from_line, to_line) = directive_span(c.line, toks);
        allows.push(AllowDirective {
            rules,
            line: c.line,
            from_line,
            to_line,
            hits: 0,
        });
    }
    (allows, diags)
}

/// Resolve the lines a directive at `line` suppresses: its own line when it
/// trails code; otherwise the next code line, widened to the full function
/// body when that line starts a `fn` item.
fn directive_span(line: u32, toks: &[Token]) -> (u32, u32) {
    if toks.iter().any(|t| t.line == line) {
        return (line, line);
    }
    let Some(first) = toks.iter().position(|t| t.line > line) else {
        return (line, line);
    };
    let next_line = toks[first].line;
    // Does the item starting here begin a function? Scan past attributes
    // (`#[inline]`, …) and visibility/qualifier noise (`pub`, `pub(crate)`,
    // `const`, `async`, `unsafe`, `extern "C"`) looking for `fn`.
    let mut j = first;
    let mut guard = 0;
    while j < toks.len() && guard < 64 {
        guard += 1;
        let t = &toks[j];
        if t.is_punct('#') && toks.get(j + 1).is_some_and(|t1| t1.is_punct('[')) {
            // Skip the whole attribute group (brackets may nest).
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        if t.is_ident("fn") {
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            if let Some(end) = matching_brace(toks, k) {
                return (next_line, toks[end].line);
            }
            break;
        }
        let qualifier = matches!(&t.kind, TokKind::Ident if
                ["pub", "const", "async", "unsafe", "extern", "crate", "in", "self", "super"]
                    .contains(&t.text.as_str()))
            || t.is_punct('(')
            || t.is_punct(')')
            || t.kind == TokKind::Literal;
        if !qualifier {
            break;
        }
        j += 1;
    }
    (next_line, next_line)
}

/// Recursively collect the workspace's lintable `.rs` files as
/// `(relpath, absolute path)`, sorted by relpath for stable output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace rooted at `root`: the semantic code lint over
/// every non-skipped file plus the Fig. 6 spec-conformance pass against
/// the committed table. Returns the diagnostics plus the number of files
/// scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    lint_workspace_with_table(root, None)
}

/// [`lint_workspace`] with the Fig. 6 table read from `table_override`
/// instead of the committed [`crate::spec::SPEC_TABLE_PATH`] — the hook CI
/// uses to prove a seeded spec mutation is caught end to end.
pub fn lint_workspace_with_table(
    root: &Path,
    table_override: Option<&Path>,
) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut srcs = Vec::new();
    for (rel, path) in workspace_files(root)? {
        if FileClass::classify(&rel).skip {
            continue;
        }
        srcs.push((rel, std::fs::read_to_string(&path)?));
    }
    let scanned = srcs.len();
    let mut diags = lint_sources(&srcs);

    let table_path = table_override
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join(crate::spec::SPEC_TABLE_PATH));
    match std::fs::read_to_string(&table_path) {
        Ok(table) => diags.extend(crate::spec::check_workspace(&table, &srcs)),
        Err(e) => diags.push(Diagnostic {
            file: crate::spec::SPEC_TABLE_PATH.to_string(),
            line: 1,
            rule: Rule::SpecMismatch,
            message: format!(
                "cannot read the committed Fig. 6 spec table ({e}); the state machine \
                 is unpinned"
            ),
        }),
    }
    diags.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
    Ok((diags, scanned))
}

/// The workspace's hot-function set: every function reachable from the
/// [`HOT_ROOT`] dispatch loop, as `(file, name, line)` — the reachability
/// evidence behind the hot-path rules, exported so `tcdsim lint --json`
/// can show *why* a site counts as hot.
pub fn workspace_hot_functions(root: &Path) -> std::io::Result<Vec<(String, String, u32)>> {
    let mut defs = Vec::new();
    for (rel, path) in workspace_files(root)? {
        let fc = FileClass::classify(&rel);
        if fc.skip || !fc.state_code || fc.test_code {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        defs.extend(symbols::extract(&rel, &src));
    }
    Ok(callgraph::hot_functions(&defs, HOT_ROOT))
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the root the relative rule paths are defined against.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_layout() {
        assert!(FileClass::classify("crates/rand/src/lib.rs").skip);
        assert!(FileClass::classify("crates/simlint/tests/fixtures/bad.rs").skip);
        assert!(FileClass::classify("crates/netsim/src/routing.rs").state_code);
        assert!(FileClass::classify("crates/obs/src/metrics.rs").state_code);
        assert!(!FileClass::classify("crates/bench/src/lib.rs").state_code);
        assert!(FileClass::classify("crates/bench/src/lib.rs").wall_clock_ok);
        assert!(FileClass::classify("src/harness.rs").threads_ok);
        assert!(FileClass::classify("crates/netsim/src/par.rs").threads_ok);
        assert!(!FileClass::classify("crates/netsim/src/sim.rs").threads_ok);
        assert!(FileClass::classify("src/lib.rs").crate_root);
        assert!(FileClass::classify("crates/netsim/src/lib.rs").crate_root);
        assert!(!FileClass::classify("crates/netsim/src/routing.rs").crate_root);
        assert!(!FileClass::classify("crates/netsim/tests/src/lib.rs").crate_root);
        assert!(FileClass::classify("tests/static_analysis.rs").test_code);
        assert!(FileClass::classify("crates/netsim/tests/fault_order.rs").test_code);
        assert!(!FileClass::classify("crates/netsim/src/sim.rs").test_code);
    }

    #[test]
    fn thread_spawn_carve_out_is_exactly_harness_and_par() {
        // The conservative-parallel executor is the one engine file
        // allowed to touch threads; the identical source anywhere else
        // in the engine is flagged.
        let src = "#![forbid(unsafe_code)]\n\
                   fn run_epoch() {\n\
                       std::thread::scope(|s| { s.spawn(|| {}); });\n\
                   }\n";
        assert!(
            lint_file("crates/netsim/src/par.rs", src).is_empty(),
            "par.rs worker threads are sanctioned"
        );
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == Rule::ThreadSpawn),
            "thread::scope outside the carve-out must be flagged: {diags:?}"
        );
    }

    /// A two-function fixture: `drive` reaches `step`, `cold` is unreachable.
    fn reach_src(body_hot: &str, body_cold: &str) -> String {
        format!(
            "#![forbid(unsafe_code)]\n\
             fn drive(v: &[u32]) {{ step(v); }}\n\
             fn step(v: &[u32]) {{\n{body_hot}\n}}\n\
             fn cold(v: &[u32]) {{\n{body_cold}\n}}\n"
        )
    }

    #[test]
    fn hot_rules_follow_reachability_not_file_names() {
        // The same panicky body: flagged in the reachable fn, not the cold
        // one — in a file that was never on the old hand-maintained list.
        let src = reach_src("let _ = v[0];", "let _ = v[0];");
        let diags = lint_file("crates/netsim/src/host.rs", &src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::HotPathPanic);
        assert_eq!(diags[0].line, 4, "only the reachable copy: {diags:?}");
    }

    #[test]
    fn fn_scope_allow_covers_whole_body() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(v: &[u32]) { f(v, 0); g(v); }\n\
                   // simlint: allow(hot-path-panic) -- ports are fixed at build\n\
                   fn f(v: &[u32], i: usize) -> u32 {\n\
                       let a = v[i];\n\
                       v[a as usize]\n\
                   }\n\
                   fn g(v: &[u32]) -> u32 { v[0] }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 8);
        assert_eq!(diags[0].rule, Rule::HotPathPanic);
    }

    #[test]
    fn trailing_allow_covers_its_line_only() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(v: &[u32]) { f(v); }\n\
                   fn f(v: &[u32]) -> u32 {\n\
                       let a = v[0]; // simlint: allow(hot-path-panic) -- checked above\n\
                       v[1]\n\
                   }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn cold_fn_and_its_callees_leave_the_hot_set() {
        // `setup` allocates and indexes, and so does its callee `helper`;
        // neither is flagged because the cold marker severs reachability.
        // `step` stays hot through the direct `drive` edge.
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(v: &[u32]) { setup(v); step(v); }\n\
                   // simlint: cold -- runs once at startup, before any event\n\
                   fn setup(v: &[u32]) -> u32 { let x = Vec::from(v); helper(&x) }\n\
                   fn helper(v: &[u32]) -> u32 { v[0] }\n\
                   fn step(v: &[u32]) -> u32 { v[0] }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::HotPathPanic);
        assert_eq!(diags[0].line, 6, "only the hot copy: {diags:?}");
    }

    #[test]
    fn cold_callee_reached_another_way_stays_hot() {
        // The cold marker removes `setup`, but `helper` is still reachable
        // through `step`, so its panic site stays flagged.
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(v: &[u32]) { setup(v); step(v); }\n\
                   // simlint: cold -- startup only\n\
                   fn setup(v: &[u32]) -> u32 { helper(v) }\n\
                   fn step(v: &[u32]) -> u32 { helper(v) }\n\
                   fn helper(v: &[u32]) -> u32 { v[0] }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::HotPathPanic);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn cold_without_reason_is_reported() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive() { setup(); }\n\
                   // simlint: cold\n\
                   fn setup() {}\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::BadAllow);
        assert!(diags[0].message.contains("cold"), "{diags:?}");
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "#![forbid(unsafe_code)]\n// simlint: allow(hot-path-panic)\nfn f() {}\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
    }

    #[test]
    fn stale_allow_is_reported_and_live_allow_is_not() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(v: &[u32]) { live(v); dead(v); }\n\
                   // simlint: allow(hot-path-panic) -- index bounded by caller\n\
                   fn live(v: &[u32]) -> u32 { v[0] }\n\
                   // simlint: allow(hot-path-panic) -- nothing panics here anymore\n\
                   fn dead(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::StaleAllow);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_hot_rules_only() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let v = vec![1]; assert_eq!(v.first().unwrap(), &1); }\n\
                   }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::HashCollections);
    }

    #[test]
    fn vec_macro_is_not_indexing() {
        let src = "#![forbid(unsafe_code)]\nfn f() -> Vec<u32> { vec![0; 4] }\n";
        assert!(lint_file("crates/netsim/src/event.rs", src).is_empty());
    }

    #[test]
    fn allocation_in_hot_fn_is_flagged() {
        let src = reach_src(
            "let a = vec![0u8; 4]; let b = format!(\"x\"); let c = Vec::<u8>::new(); \
             let d = v.to_vec(); drop((a, b, c, d));",
            "let _ = vec![0u8; 4];",
        );
        let diags = lint_file("crates/netsim/src/host.rs", &src);
        assert_eq!(diags.len(), 4, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::HotPathAlloc));
    }

    #[test]
    fn raw_ps_arithmetic_in_hot_fn_is_flagged() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn drive(t: T) { step(t); }\n\
                   fn step(t: T) -> u64 {\n\
                       let a = t.as_ps() + 1;\n\
                       let b = 2 + t.as_ps();\n\
                       let ok = t.as_ps() / 2;\n\
                       let widened = (t.as_ps() as u128) * 3;\n\
                       a + b + ok + widened as u64\n\
                   }\n";
        let diags = lint_file("crates/flowctl/src/time.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::TimeArith));
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[1].line, 5);
    }
}
