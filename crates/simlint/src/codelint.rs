//! Level 1: token-level workspace lint.
//!
//! Enforces project rules that clippy cannot express:
//!
//! - `hash-collections`: no `HashMap`/`HashSet` in simulation-state code —
//!   iteration order feeds event scheduling, so BTree collections are
//!   required for deterministic, bit-identical runs.
//! - `wall-clock`: no `Instant`/`SystemTime` outside the parallel harness
//!   and bench code; simulation logic must consume virtual time only.
//! - `thread-spawn`: no `thread::spawn`/`thread::scope` outside the harness;
//!   all parallelism goes through the deterministic work queue.
//! - `hot-path-panic`: no `.unwrap()`, `.expect()` or slice indexing in the
//!   designated hot-path modules (`switch.rs`, `ibswitch.rs`, `event.rs`)
//!   without an inline justification.
//! - `forbid-unsafe`: every non-vendored crate root carries
//!   `#![forbid(unsafe_code)]`.
//! - `bad-allow`: malformed or unknown `// simlint: allow(...)` directives.
//!
//! Suppression syntax (reason is mandatory):
//!
//! ```text
//! // simlint: allow(rule) -- reason
//! ```
//!
//! Placed at the end of a code line it covers that line; on its own line it
//! covers the next code line, or — when that line starts a `fn` item — the
//! whole function body, mirroring the scoping of Rust's `#[allow]`.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, TokKind, Token};

/// Lint rules, in stable report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashCollections,
    WallClock,
    ThreadSpawn,
    HotPathPanic,
    ForbidUnsafe,
    BadAllow,
}

pub const ALL_RULES: [Rule; 6] = [
    Rule::HashCollections,
    Rule::WallClock,
    Rule::ThreadSpawn,
    Rule::HotPathPanic,
    Rule::ForbidUnsafe,
    Rule::BadAllow,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::BadAllow => "bad-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// One structured finding, rendered as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// How the lint treats a file, derived purely from its workspace-relative
/// path (always with `/` separators).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Vendored dependency stubs, lint fixtures, build output: not ours.
    pub skip: bool,
    /// Simulation-state code: BTree collections required.
    pub state_code: bool,
    /// May read wall-clock time (harness + bench).
    pub wall_clock_ok: bool,
    /// May spawn OS threads (harness only).
    pub threads_ok: bool,
    /// Hot-path module: panics need inline justification.
    pub hot_path: bool,
    /// Crate root that must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

const VENDORED_PREFIXES: [&str; 3] = ["crates/rand/", "crates/proptest/", "crates/criterion/"];

const HOT_PATH_FILES: [&str; 3] = [
    "crates/netsim/src/switch.rs",
    "crates/netsim/src/ibswitch.rs",
    "crates/netsim/src/event.rs",
];

/// Crates whose code holds or mutates simulation state.
const STATE_PREFIXES: [&str; 9] = [
    "crates/netsim/",
    "crates/flowctl/",
    "crates/cc/",
    "crates/core/",
    "crates/workloads/",
    "crates/stats/",
    "crates/obs/",
    "crates/simlint/",
    "src/",
];

impl FileClass {
    pub fn classify(relpath: &str) -> FileClass {
        let mut fc = FileClass::default();
        if VENDORED_PREFIXES.iter().any(|p| relpath.starts_with(p))
            || relpath.starts_with("target/")
            || relpath.contains("/fixtures/")
        {
            fc.skip = true;
            return fc;
        }
        fc.state_code =
            STATE_PREFIXES.iter().any(|p| relpath.starts_with(p)) || relpath.starts_with("tests/");
        fc.wall_clock_ok = relpath == "src/harness.rs" || relpath.starts_with("crates/bench/");
        fc.threads_ok = relpath == "src/harness.rs";
        fc.hot_path = HOT_PATH_FILES.contains(&relpath);
        fc.crate_root = relpath == "src/lib.rs"
            || (relpath.starts_with("crates/")
                && relpath.ends_with("/src/lib.rs")
                && relpath.matches('/').count() == 3);
        fc
    }
}

/// A parsed `// simlint: allow(rule, ...) -- reason` directive.
struct AllowDirective {
    rules: Vec<Rule>,
    /// Inclusive 1-based line range this directive suppresses.
    from_line: u32,
    to_line: u32,
}

/// Keywords that may legitimately be followed by `[` starting an array
/// expression rather than an indexing operation.
const INDEX_EXEMPT_KEYWORDS: [&str; 12] = [
    "let", "mut", "in", "if", "else", "match", "return", "as", "ref", "move", "break", "while",
];

/// Lint a single file given its workspace-relative path and source text.
/// This is the unit the fixture tests drive directly.
pub fn lint_file(relpath: &str, src: &str) -> Vec<Diagnostic> {
    let fc = FileClass::classify(relpath);
    if fc.skip {
        return Vec::new();
    }
    let lexed = lex(src);
    let mut diags = Vec::new();
    let (allows, mut bad_allow_diags) =
        parse_allow_directives(relpath, &lexed.comments, &lexed.tokens);
    diags.append(&mut bad_allow_diags);

    let test_ranges = cfg_test_ranges(&lexed.tokens);
    let in_tests = |line: u32| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let allowed = |rule: Rule, line: u32| {
        allows
            .iter()
            .any(|a| a.rules.contains(&rule) && line >= a.from_line && line <= a.to_line)
    };
    let mut push = |rule: Rule, line: u32, message: String| {
        if !allowed(rule, line) {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if fc.state_code && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            push(
                Rule::HashCollections,
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; simulation-state code must \
                     use `BTree{}` so runs stay bit-identical",
                    t.text,
                    &t.text[4..]
                ),
            );
        }
        if !fc.wall_clock_ok && (t.is_ident("Instant") || t.is_ident("SystemTime")) {
            push(
                Rule::WallClock,
                t.line,
                format!(
                    "`{}` reads the wall clock; simulation logic must only consume virtual \
                     `SimTime` (wall-clock access is confined to src/harness.rs and bench code)",
                    t.text
                ),
            );
        }
        if !fc.threads_ok
            && t.is_ident("thread")
            && matches!(toks.get(i + 1), Some(t1) if t1.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t2) if t2.is_punct(':'))
            && matches!(toks.get(i + 3),
                Some(t3) if t3.is_ident("spawn") || t3.is_ident("scope") || t3.is_ident("Builder"))
        {
            push(
                Rule::ThreadSpawn,
                t.line,
                "OS threads outside src/harness.rs break deterministic scheduling; route \
                 parallelism through the harness work queue"
                    .to_string(),
            );
        }
        if fc.hot_path && !in_tests(t.line) {
            if (t.is_ident("unwrap") || t.is_ident("expect")) && i > 0 && toks[i - 1].is_punct('.')
            {
                push(
                    Rule::HotPathPanic,
                    t.line,
                    format!(
                        "`.{}()` can panic in a hot-path module; handle the case or add \
                         `// simlint: allow(hot-path-panic) -- <why it cannot fail>`",
                        t.text
                    ),
                );
            }
            if t.is_punct('[') && i > 0 && is_index_base(&toks[i - 1]) {
                push(
                    Rule::HotPathPanic,
                    t.line,
                    "slice indexing can panic in a hot-path module; use `get()` or add \
                     `// simlint: allow(hot-path-panic) -- <why the index is in bounds>`"
                        .to_string(),
                );
            }
        }
    }

    if fc.crate_root && !has_forbid_unsafe(toks) {
        // Suppression check uses line 1 (the attribute belongs at the top).
        if !allowed(Rule::ForbidUnsafe, 1) {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line: 1,
                rule: Rule::ForbidUnsafe,
                message: "crate root is missing `#![forbid(unsafe_code)]`; every non-vendored \
                          crate in this workspace must forbid unsafe code"
                    .to_string(),
            });
        }
    }

    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// True if a `[` directly after this token is an indexing operation.
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokKind::Ident => !INDEX_EXEMPT_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    }
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Line ranges (inclusive) covered by `#[cfg(test)] mod ... { }` items.
/// Test modules are exempt from `hot-path-panic` only; all other rules
/// apply inside them (a nondeterministic test is still a flaky test).
fn cfg_test_ranges(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 8 < toks.len() {
        let w = &toks[i..i + 7];
        let is_cfg_test = w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
            && w[6].is_punct(']');
        if is_cfg_test && toks.get(i + 7).is_some_and(|t| t.is_ident("mod")) {
            // Find the module's opening brace, then its match.
            let mut j = i + 8;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            if let Some(end) = matching_brace(toks, j) {
                ranges.push((toks[i].line, toks[end].line));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Given the index of a `{` token, return the index of its matching `}`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    if open >= toks.len() || !toks[open].is_punct('{') {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Parse every `simlint:` comment into a scoped directive, emitting
/// `bad-allow` diagnostics for malformed ones.
fn parse_allow_directives(
    relpath: &str,
    comments: &[Comment],
    toks: &[Token],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("simlint:") else {
            continue;
        };
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line: c.line,
                rule: Rule::BadAllow,
                message: msg,
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(format!(
                "unrecognized simlint directive `{text}`; expected \
                 `simlint: allow(rule) -- reason`"
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unterminated rule list in allow directive".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut unknown = false;
        for name in rest[..close].split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    bad(format!(
                        "unknown rule `{name}` in allow directive (known rules: {})",
                        ALL_RULES.map(Rule::name).join(", ")
                    ));
                    unknown = true;
                }
            }
        }
        if unknown {
            continue;
        }
        let after = rest[close + 1..].trim();
        let reason_ok = after
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            bad("allow directive is missing a justification; write \
                 `simlint: allow(rule) -- reason`"
                .to_string());
            continue;
        }
        let (from_line, to_line) = directive_span(c.line, toks);
        allows.push(AllowDirective {
            rules,
            from_line,
            to_line,
        });
    }
    (allows, diags)
}

/// Resolve the lines a directive at `line` suppresses: its own line when it
/// trails code; otherwise the next code line, widened to the full function
/// body when that line starts a `fn` item.
fn directive_span(line: u32, toks: &[Token]) -> (u32, u32) {
    if toks.iter().any(|t| t.line == line) {
        return (line, line);
    }
    let Some(first) = toks.iter().position(|t| t.line > line) else {
        return (line, line);
    };
    let next_line = toks[first].line;
    // Does the item starting here begin a function? Scan past attributes
    // (`#[inline]`, …) and visibility/qualifier noise (`pub`, `pub(crate)`,
    // `const`, `async`, `unsafe`, `extern "C"`) looking for `fn`.
    let mut j = first;
    let mut guard = 0;
    while j < toks.len() && guard < 64 {
        guard += 1;
        let t = &toks[j];
        if t.is_punct('#') && toks.get(j + 1).is_some_and(|t1| t1.is_punct('[')) {
            // Skip the whole attribute group (brackets may nest).
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < toks.len() {
                if toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        if t.is_ident("fn") {
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            if let Some(end) = matching_brace(toks, k) {
                return (next_line, toks[end].line);
            }
            break;
        }
        let qualifier = matches!(&t.kind, TokKind::Ident if
                ["pub", "const", "async", "unsafe", "extern", "crate", "in", "self", "super"]
                    .contains(&t.text.as_str()))
            || t.is_punct('(')
            || t.is_punct(')')
            || t.kind == TokKind::Literal;
        if !qualifier {
            break;
        }
        j += 1;
    }
    (next_line, next_line)
}

/// Recursively collect the workspace's lintable `.rs` files as
/// `(relpath, absolute path)`, sorted by relpath for stable output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace rooted at `root`. Returns the diagnostics plus
/// the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut diags = Vec::new();
    let mut scanned = 0usize;
    for (rel, path) in workspace_files(root)? {
        if FileClass::classify(&rel).skip {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        scanned += 1;
        diags.extend(lint_file(&rel, &src));
    }
    Ok((diags, scanned))
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the root the relative rule paths are defined against.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_matches_layout() {
        assert!(FileClass::classify("crates/rand/src/lib.rs").skip);
        assert!(FileClass::classify("crates/simlint/tests/fixtures/bad.rs").skip);
        assert!(FileClass::classify("crates/netsim/src/switch.rs").hot_path);
        assert!(FileClass::classify("crates/netsim/src/routing.rs").state_code);
        assert!(FileClass::classify("crates/obs/src/metrics.rs").state_code);
        assert!(!FileClass::classify("crates/bench/src/lib.rs").state_code);
        assert!(FileClass::classify("crates/bench/src/lib.rs").wall_clock_ok);
        assert!(FileClass::classify("src/harness.rs").threads_ok);
        assert!(FileClass::classify("src/lib.rs").crate_root);
        assert!(FileClass::classify("crates/netsim/src/lib.rs").crate_root);
        assert!(!FileClass::classify("crates/netsim/src/routing.rs").crate_root);
        assert!(!FileClass::classify("crates/netsim/tests/src/lib.rs").crate_root);
    }

    #[test]
    fn fn_scope_allow_covers_whole_body() {
        let src = "#![forbid(unsafe_code)]\n\
                   // simlint: allow(hot-path-panic) -- ports are fixed at build\n\
                   fn f(v: &[u32], i: usize) -> u32 {\n\
                       let a = v[i];\n\
                       v[a as usize]\n\
                   }\n\
                   fn g(v: &[u32]) -> u32 { v[0] }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 7);
        assert_eq!(diags[0].rule, Rule::HotPathPanic);
    }

    #[test]
    fn trailing_allow_covers_its_line_only() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(v: &[u32]) -> u32 {\n\
                       let a = v[0]; // simlint: allow(hot-path-panic) -- checked above\n\
                       v[1]\n\
                   }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "#![forbid(unsafe_code)]\n// simlint: allow(hot-path-panic)\nfn f() {}\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::BadAllow);
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_hot_path_panic_only() {
        let src = "#![forbid(unsafe_code)]\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       #[test]\n\
                       fn t() { let v = vec![1]; assert_eq!(v.first().unwrap(), &1); }\n\
                   }\n";
        let diags = lint_file("crates/netsim/src/event.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::HashCollections);
    }

    #[test]
    fn vec_macro_is_not_indexing() {
        let src = "#![forbid(unsafe_code)]\nfn f() -> Vec<u32> { vec![0; 4] }\n";
        assert!(lint_file("crates/netsim/src/event.rs", src).is_empty());
    }
}
