//! `simlint` — static analysis for the TCD reproduction workspace.
//!
//! Two levels, both pure (no I/O beyond reading source files, no
//! dependencies outside the workspace):
//!
//! * [`codelint`] — a token-level Rust scanner enforcing the project's
//!   determinism and robustness rules that clippy cannot express (BTree
//!   collections in simulation state, no wall-clock or OS threads outside
//!   the harness, justified panics in hot-path modules, `unsafe` forbidden
//!   in every crate root).
//! * [`topolint`] — a static scenario analyzer that builds the directed
//!   buffer-dependency graph from routing tables and reports potential
//!   PFC/CBFC deadlock cycles (à la DCFIT), unreachable host pairs,
//!   routing asymmetries and under-provisioned PFC headroom — before a
//!   single event is scheduled.
//!
//! The runtime audit layer (PR 2) catches these properties *while
//! simulating*; `simlint` moves the same guarantees left, into a
//! compile-adjacent pass wired into `scripts/ci.sh` via `tcdsim lint`.

#![forbid(unsafe_code)]

pub mod codelint;
pub mod lexer;
pub mod topolint;

pub use codelint::{
    find_workspace_root, lint_file, lint_workspace, Diagnostic, FileClass, Rule, ALL_RULES,
};
pub use topolint::{analyze, Severity, TopoDiag, TopoReport, TopoSpec, DEFAULT_PFC_HEADROOM_BYTES};
