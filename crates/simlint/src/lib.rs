//! `simlint` — static analysis for the TCD reproduction workspace.
//!
//! Two levels, both pure (no I/O beyond reading source files, no
//! dependencies outside the workspace):
//!
//! * [`codelint`] — a semantic Rust scanner enforcing the project's
//!   determinism and robustness rules that clippy cannot express (BTree
//!   collections in simulation state, no wall-clock or OS threads outside
//!   the harness, `unsafe` forbidden in every crate root, and — on every
//!   function the call graph proves reachable from the engine's `drive()`
//!   dispatch loop — justified panics only, no heap allocation, no
//!   unchecked picosecond arithmetic). It is built on a [`lexer`], a
//!   [`symbols`] table and [`callgraph`] reachability, and includes a
//!   [`spec`] pass diffing the implemented TCD state machine against the
//!   committed machine-readable Fig. 6 table.
//! * [`topolint`] — a static scenario analyzer that builds the directed
//!   buffer-dependency graph from routing tables and reports potential
//!   PFC/CBFC deadlock cycles (à la DCFIT), unreachable host pairs,
//!   routing asymmetries and under-provisioned PFC headroom — before a
//!   single event is scheduled. Fault plans are analyzed too: every
//!   registered `RouteChange` set is composed onto the baseline tables and
//!   run through the same cycle finder, so a route swap that wedges the
//!   fabric is a *static* error, cross-checked against the runtime
//!   PFC-deadlock watchdog.
//!
//! The runtime audit layer (PR 2) catches these properties *while
//! simulating*; `simlint` moves the same guarantees left, into a
//! compile-adjacent pass wired into `scripts/ci.sh` via `tcdsim lint`
//! (which also offers `--json` machine-readable [`output`]).

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod codelint;
pub mod lexer;
pub mod output;
pub mod spec;
pub mod symbols;
pub mod topolint;

pub use codelint::{
    find_workspace_root, lint_file, lint_sources, lint_workspace, lint_workspace_with_table,
    workspace_hot_functions, Diagnostic, FileClass, Rule, ALL_RULES, HOT_ROOT,
};
pub use output::json_report;
pub use spec::{SpecTable, SPEC_TABLE_PATH};
pub use symbols::FnDef;
pub use topolint::{analyze, Severity, TopoDiag, TopoReport, TopoSpec, DEFAULT_PFC_HEADROOM_BYTES};
