//! Fixture: malformed allow directives (unknown rule, missing reason).

pub fn drive(v: &[u64]) -> u64 {
    a(v) + b(v)
}

// simlint: allow(no-such-rule) -- reason present but rule unknown
pub fn a(v: &[u64]) -> u64 {
    v[0]
}

// simlint: allow(hot-path-panic)
pub fn b(v: &[u64]) -> u64 {
    v[0]
}
