//! Fixture: unchecked arithmetic on raw `as_ps()` picosecond u64s in an
//! event-path-reachable function. Division, u128 widening and shifts are
//! fine; `+`/`-`/`*` directly against the raw u64 are not.

pub fn drive(t: SimTime, d: SimDuration) -> u64 {
    hot(t, d)
}

pub fn hot(t: SimTime, d: SimDuration) -> u64 {
    let bad_sum = t.as_ps() + d.as_ps();
    let bad_scaled = 3 * d.as_ps();
    let ok_div = t.as_ps() / 2;
    let ok_wide = (t.as_ps() as u128) * 3;
    // simlint: allow(time-arith) -- fixture: bounded by construction
    let ok_allowed = t.as_ps() - 1;
    bad_sum + bad_scaled + ok_div + ok_wide as u64 + ok_allowed
}

pub fn cold(t: SimTime) -> u64 {
    t.as_ps() * 1000
}
