//! Fixture: unwrap/expect/indexing in a hot-path module without an allow
//! directive.
pub fn hot(v: &[u64], o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect("present");
    a + b + v[0]
}
