//! Fixture: unwrap/expect/indexing in a function reachable from the
//! `drive()` dispatch root, without an allow directive — plus an
//! identical unreachable twin that must NOT be flagged.
pub fn drive(v: &[u64], o: Option<u64>) -> u64 {
    hot(v, o)
}

pub fn hot(v: &[u64], o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect("present");
    a + b + v[0]
}

pub fn cold(v: &[u64], o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect("present");
    a + b + v[0]
}
