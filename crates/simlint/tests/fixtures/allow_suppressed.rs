//! Fixture: the same hot-path violations as hot_path_panic.rs, fully
//! suppressed by scoped allow directives with reasons.

pub fn drive(v: &[u64], o: Option<u64>) -> u64 {
    hot(v, o) + single_line(v)
}

// simlint: allow(hot-path-panic) -- fixture: indices proven in bounds by construction
pub fn hot(v: &[u64], o: Option<u64>) -> u64 {
    let a = o.unwrap();
    let b = o.expect("present");
    a + b + v[0]
}

pub fn single_line(v: &[u64]) -> u64 {
    v[1] // simlint: allow(hot-path-panic) -- fixture: caller guarantees len > 1
}
