//! Fixture: a crate root missing `#![forbid(unsafe_code)]`.

pub fn noop() {}
