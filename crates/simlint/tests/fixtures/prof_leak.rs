//! Fixture: wall-clock profiler values consumed by simulation-state code.
//! Declaring the profiler, naming its types, and statement-position calls
//! are fine; a profiler value feeding an expression is a leak.
use lossless_obs::prof::Prof;

pub struct Engine {
    pub profiler: Prof,
    prof: lossless_obs::prof::Prof,
}

impl Engine {
    pub fn fresh(cfg: lossless_obs::prof::ProfConfig) -> Self {
        let mut e = Self {
            profiler: Prof::from_env(),
            prof: Prof::disabled(),
        };
        e.prof.enable(cfg);
        e
    }

    pub fn step_ok(&mut self) {
        // Statement-position calls never feed a value onward.
        self.profiler.span_open();
        self.prof
            .span_close(0, lossless_obs::prof::NodeClass::Engine);
    }

    pub fn leaks(&mut self) -> u64 {
        if self.profiler.arm_span() {
            // leak: branch condition consumes a profiler value
            self.profiler.span_open();
        }
        let n = self.prof.events; // leak: let binding consumes a field
        bump(self.profiler.events); // leak: argument position
        // simlint: allow(prof-leak) -- fixture: sanctioned wiring example
        if self.profiler.arm_span() {}
        n
    }
}

fn bump(n: u64) -> u64 {
    n + 1
}
