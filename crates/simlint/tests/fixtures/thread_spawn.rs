//! Fixture: thread spawning outside the harness (the event engine is
//! single-threaded; parallelism lives in src/harness.rs only).
pub fn run() {
    std::thread::spawn(|| {}).join().ok();
}
