//! Fixture: heap allocation on the event path — macro, constructor,
//! turbofish constructor and allocating method forms — plus the same
//! code in an unreachable function (fine) and a suppressed site.

pub fn drive(v: &[u8]) -> usize {
    hot(v)
}

pub fn hot(v: &[u8]) -> usize {
    let a = vec![0u8; 4];
    let b = format!("{}", v.len());
    let c = Vec::<u8>::new();
    let d = String::with_capacity(8);
    let e = v.to_vec();
    // simlint: allow(hot-path-alloc) -- fixture: one-shot diagnostics string
    let f = v.len().to_string();
    a.len() + b.len() + c.len() + d.len() + e.len() + f.len()
}

pub fn cold(v: &[u8]) -> Vec<u8> {
    let mut out = v.to_vec();
    out.extend(vec![1u8, 2]);
    out
}
