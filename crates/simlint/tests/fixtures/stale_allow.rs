//! Fixture: a live allow directive (suppresses a real finding) next to a
//! stale one whose scope no longer contains anything to suppress.

pub fn drive(v: &[u64]) -> u64 {
    live(v) + dead(v)
}

// simlint: allow(hot-path-panic) -- fixture: index bounded by caller
pub fn live(v: &[u64]) -> u64 {
    v[0]
}

// simlint: allow(hot-path-panic) -- fixture: nothing left to suppress here
pub fn dead(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}
