//! Fixture: HashMap/HashSet in simulation state code (non-deterministic
//! iteration order breaks golden-trace reproducibility).
use std::collections::{HashMap, HashSet};

pub fn state() -> (HashMap<u32, u64>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}
