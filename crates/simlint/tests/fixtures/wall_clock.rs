//! Fixture: wall-clock reads outside the harness (simulation results must
//! be a pure function of the scenario, never of real time).
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
