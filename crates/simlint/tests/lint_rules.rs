//! Fixture-driven tests: each lint rule fires on a known-bad snippet, allow
//! directives suppress exactly what they claim to, and — the keystone — the
//! committed workspace itself lints clean.
//!
//! The snippets live in `tests/fixtures/` (excluded from the workspace
//! walker) and are fed through [`simlint::lint_file`] under fake relative
//! paths so each lands in the file class its rule targets.

use simlint::{find_workspace_root, lint_file, lint_workspace, Rule};

/// Lint `src` as if it lived at `relpath` and return the fired rules.
fn rules_for(relpath: &str, src: &str) -> Vec<Rule> {
    lint_file(relpath, src)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn hash_collections_fire_in_state_code() {
    let src = include_str!("fixtures/hash_collections.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert!(
        rules.iter().all(|r| *r == Rule::HashCollections),
        "only hash-collections should fire: {rules:?}"
    );
    // Two in the `use` list, two in the return type, two constructions.
    assert_eq!(rules.len(), 6, "{rules:?}");
    // The same source outside simulation-state crates is fine.
    assert!(rules_for("crates/rand/src/bad.rs", src).is_empty());
}

#[test]
fn wall_clock_fires_outside_the_harness() {
    let src = include_str!("fixtures/wall_clock.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert!(
        !rules.is_empty() && rules.iter().all(|r| *r == Rule::WallClock),
        "{rules:?}"
    );
    // The harness and the bench crate may read wall clocks.
    assert!(rules_for("src/harness.rs", src).is_empty());
    assert!(rules_for("crates/bench/src/bad.rs", src).is_empty());
}

#[test]
fn thread_spawn_fires_outside_the_harness() {
    let src = include_str!("fixtures/thread_spawn.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert_eq!(rules, vec![Rule::ThreadSpawn]);
    assert!(rules_for("src/harness.rs", src).is_empty());
}

#[test]
fn hot_path_panic_fires_only_in_hot_path_modules() {
    let src = include_str!("fixtures/hot_path_panic.rs");
    let rules = rules_for("crates/netsim/src/switch.rs", src);
    // unwrap + expect + one indexing site.
    assert_eq!(rules.len(), 3, "{rules:?}");
    assert!(rules.iter().all(|r| *r == Rule::HotPathPanic), "{rules:?}");
    // The same code in a non-hot-path module is allowed.
    assert!(rules_for("crates/netsim/src/topology.rs", src).is_empty());
}

#[test]
fn missing_forbid_unsafe_fires_on_crate_roots_only() {
    let src = include_str!("fixtures/missing_forbid.rs");
    assert_eq!(
        rules_for("crates/netsim/src/lib.rs", src),
        vec![Rule::ForbidUnsafe]
    );
    // Non-root modules don't need the attribute.
    assert!(rules_for("crates/netsim/src/other.rs", src).is_empty());
}

#[test]
fn allow_directives_suppress_their_scope() {
    let src = include_str!("fixtures/allow_suppressed.rs");
    let diags = lint_file("crates/netsim/src/switch.rs", src);
    assert!(
        diags.is_empty(),
        "all violations covered by allows: {diags:?}"
    );
}

#[test]
fn malformed_allows_are_themselves_findings() {
    let src = include_str!("fixtures/bad_allow.rs");
    let rules = rules_for("crates/netsim/src/switch.rs", src);
    // Each bad directive reports bad-allow AND fails to suppress the
    // indexing under it.
    assert_eq!(
        rules.iter().filter(|r| **r == Rule::BadAllow).count(),
        2,
        "{rules:?}"
    );
    assert_eq!(
        rules.iter().filter(|r| **r == Rule::HotPathPanic).count(),
        2,
        "{rules:?}"
    );
}

/// The keystone: the committed workspace has zero findings. Any rule
/// violation introduced by a future change fails this test before it ever
/// reaches the CI `tcdsim lint` gate.
#[test]
fn committed_workspace_lints_clean() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("simlint lives inside the workspace");
    let (diags, files) = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(files > 50, "walker should see the whole workspace: {files}");
    assert!(
        diags.is_empty(),
        "workspace must self-lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
