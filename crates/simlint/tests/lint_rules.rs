//! Fixture-driven tests: each lint rule fires on a known-bad snippet, allow
//! directives suppress exactly what they claim to, and — the keystone — the
//! committed workspace itself lints clean (zero findings, zero stale
//! allows, Fig. 6 conformant).
//!
//! The snippets live in `tests/fixtures/` (excluded from the workspace
//! walker) and are fed through [`simlint::lint_file`] under fake relative
//! paths so each lands in the file class its rule targets. Since PR 8 the
//! hot set is call-graph reachability from the `drive()` dispatch root, so
//! each hot-rule fixture carries its own `drive` plus an unreachable
//! `cold` twin.

use simlint::{find_workspace_root, lint_file, lint_workspace, lint_workspace_with_table, Rule};

/// Lint `src` as if it lived at `relpath` and return the fired rules.
fn rules_for(relpath: &str, src: &str) -> Vec<Rule> {
    lint_file(relpath, src)
        .into_iter()
        .map(|d| d.rule)
        .collect()
}

#[test]
fn hash_collections_fire_in_state_code() {
    let src = include_str!("fixtures/hash_collections.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert!(
        rules.iter().all(|r| *r == Rule::HashCollections),
        "only hash-collections should fire: {rules:?}"
    );
    // Two in the `use` list, two in the return type, two constructions.
    assert_eq!(rules.len(), 6, "{rules:?}");
    // The same source outside simulation-state crates is fine.
    assert!(rules_for("crates/rand/src/bad.rs", src).is_empty());
}

#[test]
fn wall_clock_fires_outside_the_harness() {
    let src = include_str!("fixtures/wall_clock.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert!(
        !rules.is_empty() && rules.iter().all(|r| *r == Rule::WallClock),
        "{rules:?}"
    );
    // The harness, the bench crate and the self-profiler may read wall
    // clocks.
    assert!(rules_for("src/harness.rs", src).is_empty());
    assert!(rules_for("crates/bench/src/bad.rs", src).is_empty());
    assert!(rules_for("crates/obs/src/prof.rs", src).is_empty());
}

#[test]
fn prof_leak_flags_value_consumption_only() {
    let src = include_str!("fixtures/prof_leak.rs");
    let diags = lint_file("crates/netsim/src/bad.rs", src);
    // The `if` condition, the `let` binding and the argument position
    // leak; declarations, type paths, statement-position calls and the
    // allow-covered `if` stay silent.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::ProfLeak), "{diags:?}");
    // The profiler's own crate and the wall-clock-sanctioned harness may
    // consume profiler values freely (only the now-unused allow directive
    // surfaces there, as stale-allow).
    for exempt in ["crates/obs/src/prof2.rs", "src/harness.rs"] {
        let rules = rules_for(exempt, src);
        assert!(
            rules.iter().all(|r| *r != Rule::ProfLeak),
            "{exempt}: {rules:?}"
        );
    }
}

#[test]
fn thread_spawn_fires_outside_the_harness() {
    let src = include_str!("fixtures/thread_spawn.rs");
    let rules = rules_for("crates/netsim/src/bad.rs", src);
    assert_eq!(rules, vec![Rule::ThreadSpawn]);
    assert!(rules_for("src/harness.rs", src).is_empty());
}

#[test]
fn hot_path_panic_follows_drive_reachability() {
    let src = include_str!("fixtures/hot_path_panic.rs");
    let diags = lint_file("crates/netsim/src/host.rs", src);
    // unwrap + expect + one indexing site — in the reachable `hot` only;
    // the byte-identical `cold` (lines 14..) is off the event path.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::HotPathPanic));
    assert!(diags.iter().all(|d| d.line <= 12), "{diags:?}");
}

#[test]
fn hot_path_alloc_flags_reachable_allocations() {
    let src = include_str!("fixtures/hot_path_alloc.rs");
    let diags = lint_file("crates/netsim/src/host.rs", src);
    // vec!, format!, Vec::<u8>::new, String::with_capacity, .to_vec —
    // the allowed .to_string and everything in `cold` stay silent.
    assert_eq!(diags.len(), 5, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::HotPathAlloc));
}

#[test]
fn time_arith_flags_raw_ps_math_on_the_event_path() {
    let src = include_str!("fixtures/time_arith.rs");
    let diags = lint_file("crates/flowctl/src/bad.rs", src);
    // `t.as_ps() + d.as_ps()` flags both operands; `3 * d.as_ps()` flags
    // one more. Division, u128 widening, the allow, and `cold` are quiet.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == Rule::TimeArith));
}

#[test]
fn stale_allow_fires_and_live_allow_does_not() {
    let src = include_str!("fixtures/stale_allow.rs");
    let diags = lint_file("crates/netsim/src/host.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::StaleAllow);
    assert_eq!(diags[0].line, 13, "the dead directive's own line");
}

#[test]
fn missing_forbid_unsafe_fires_on_crate_roots_only() {
    let src = include_str!("fixtures/missing_forbid.rs");
    assert_eq!(
        rules_for("crates/netsim/src/lib.rs", src),
        vec![Rule::ForbidUnsafe]
    );
    // Non-root modules don't need the attribute.
    assert!(rules_for("crates/netsim/src/other.rs", src).is_empty());
}

#[test]
fn allow_directives_suppress_their_scope() {
    let src = include_str!("fixtures/allow_suppressed.rs");
    let diags = lint_file("crates/netsim/src/host.rs", src);
    assert!(
        diags.is_empty(),
        "all violations covered by allows: {diags:?}"
    );
}

#[test]
fn malformed_allows_are_themselves_findings() {
    let src = include_str!("fixtures/bad_allow.rs");
    let rules = rules_for("crates/netsim/src/host.rs", src);
    // Each bad directive reports bad-allow AND fails to suppress the
    // indexing under it.
    assert_eq!(
        rules.iter().filter(|r| **r == Rule::BadAllow).count(),
        2,
        "{rules:?}"
    );
    assert_eq!(
        rules.iter().filter(|r| **r == Rule::HotPathPanic).count(),
        2,
        "{rules:?}"
    );
}

#[test]
fn mutated_fig6_table_is_caught_against_the_real_sources() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("simlint lives inside the workspace");
    let mutated = root.join("crates/simlint/tests/fixtures/fig6_mutated.spec");
    let (diags, _) =
        lint_workspace_with_table(&root, Some(&mutated)).expect("workspace walk succeeds");
    let spec: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::SpecMismatch)
        .collect();
    assert!(
        !spec.is_empty(),
        "swapping T4/T5 targets in the table must mismatch classify()/endpoints()"
    );
    assert!(
        spec.iter().any(|d| d.message.contains("T4")
            || d.message.contains("T5")
            || d.message.contains("Undetermined")),
        "{spec:?}"
    );
    // Only the spec pass may complain: the code lint is independent of
    // the table.
    assert!(
        diags.iter().all(|d| d.rule == Rule::SpecMismatch),
        "{diags:?}"
    );
}

/// The keystone: the committed workspace has zero findings — the code
/// rules (including the call-graph hot rules), zero stale allows, and the
/// implemented state machine matches the committed Fig. 6 table. Any rule
/// violation introduced by a future change fails this test before it ever
/// reaches the CI `tcdsim lint` gate.
#[test]
fn committed_workspace_lints_clean() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("simlint lives inside the workspace");
    let (diags, files) = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(files > 50, "walker should see the whole workspace: {files}");
    assert!(
        diags.is_empty(),
        "workspace must self-lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
