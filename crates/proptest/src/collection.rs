//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length ranges accepted by [`vec`]. Mirrors proptest's `SizeRange`
/// conversions for the forms this workspace uses.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: r.end().checked_add(1).expect("size overflow"),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
