//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of proptest's surface the workspace's property tests use:
//! the `proptest!` / `prop_assert*!` / `prop_oneof!` macros, range and
//! tuple strategies, `Just`, `any::<T>()`, `prop_map`, and
//! `proptest::collection::vec`. Test cases are generated from a
//! deterministic per-test RNG (seeded from the test's name), so a
//! failing case reproduces on every run. There is **no shrinking**: a
//! failure reports the offending inputs verbatim via the panic message
//! of the underlying `assert!`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare a block of property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]   // optional
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(1u64..5, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                // Mirror upstream proptest: the body runs in a closure
                // returning Result, so `return Ok(())` works for early
                // exits. Assertion macros panic instead of Err-ing,
                // which fails the test just the same.
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// Assert a boolean condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when a precondition does not hold: the case
/// body early-returns `Ok`, treating the case as vacuously true.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
