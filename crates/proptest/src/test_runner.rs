//! Test configuration and the deterministic case RNG.

/// Error type test-case closures may return via `?` / `return Err(..)`.
/// The assertion macros panic instead, so this mostly exists so that
/// `return Ok(())` type-checks inside test bodies, as it does upstream.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Subset of proptest's config: only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// SplitMix64 generator seeded from the test name and the case index,
/// so every run of the suite explores exactly the same inputs and any
/// failure reproduces immediately.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: zero bound");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
