//! Value-generation strategies: ranges, tuples, `Just`, `any`, unions
//! and `prop_map`. Unlike upstream proptest there is no `ValueTree` /
//! shrinking layer — a strategy is simply a deterministic function from
//! the case RNG to a value.

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Full-domain strategies for primitives (`any::<T>()`).
pub trait ArbitraryValue: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(core::marker::PhantomData)
}
