//! Workload generation for the paper's experiments: empirical flow-size
//! distributions (Hadoop, WebSearch), HPC message patterns (MPI + I/O),
//! synchronized incast bursts, and Poisson arrival processes targeting a
//! given average link load.
//!
//! All sampling is driven by caller-seeded [`rand`] generators, so
//! workloads are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod burst;
pub mod cdf;
pub mod mpi_io;

pub use arrival::PoissonArrivals;
pub use burst::BurstPlan;
pub use cdf::EmpiricalCdf;
pub use mpi_io::{io_message_sizes, mpi_message_cdf};

use cdf::EmpiricalCdf as Cdf;

/// The Facebook Hadoop flow-size distribution (Roy et al., SIGCOMM'15), as
/// characterized in the paper: heavy-tailed with 90% of flows smaller than
/// 120 KB. Encoded as a piecewise-linear CDF over flow bytes.
pub fn hadoop() -> Cdf {
    Cdf::new(vec![
        (100, 0.00),
        (500, 0.15),
        (1_000, 0.30),
        (5_000, 0.45),
        (10_000, 0.55),
        (30_000, 0.70),
        (60_000, 0.80),
        (100_000, 0.875),
        (120_000, 0.90),
        (300_000, 0.94),
        (1_000_000, 0.97),
        (4_000_000, 0.99),
        (10_000_000, 1.00),
    ])
    .expect("static CDF is valid")
}

/// The DCTCP WebSearch flow-size distribution (Alizadeh et al.,
/// SIGCOMM'10), as characterized in the paper: heavier than Hadoop, with
/// 90% of flows smaller than 5 MB.
pub fn websearch() -> Cdf {
    Cdf::new(vec![
        (6_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (2_667_000, 0.90),
        (6_667_000, 0.95),
        (20_000_000, 1.00),
    ])
    .expect("static CDF is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hadoop_ninety_percent_below_120kb() {
        let cdf = hadoop();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let small = (0..n).filter(|_| cdf.sample(&mut rng) <= 120_000).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.90).abs() < 0.02, "Hadoop small fraction {frac}");
    }

    #[test]
    fn websearch_ninety_percent_below_5mb() {
        let cdf = websearch();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let small = (0..n).filter(|_| cdf.sample(&mut rng) <= 5_000_000).count();
        let frac = small as f64 / n as f64;
        assert!(
            frac > 0.90 && frac < 0.97,
            "WebSearch small fraction {frac}"
        );
    }

    #[test]
    fn websearch_is_heavier_than_hadoop() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = |cdf: &Cdf, rng: &mut StdRng| {
            (0..n).map(|_| cdf.sample(rng) as f64).sum::<f64>() / n as f64
        };
        let h = mean(&hadoop(), &mut rng);
        let w = mean(&websearch(), &mut rng);
        assert!(
            w > 3.0 * h,
            "WebSearch mean {w} should dwarf Hadoop mean {h}"
        );
    }
}
