//! HPC message workloads: the MPI + I/O mix of the paper's InfiniBand
//! experiments (§5.2.2, following Brown et al., ICPP'18).
//!
//! * MPI messages: 2–32 KB, with over 50% at 2 KB;
//! * I/O messages: sizes drawn uniformly from {512 KB, 1 MB, 2 MB, 4 MB};
//! * placement: per rack, a fixed number of I/O servers receive I/O
//!   traffic from I/O clients (25% of nodes); the remaining nodes exchange
//!   MPI traffic.

use crate::cdf::EmpiricalCdf;
use rand::Rng;

/// The MPI message-size distribution: 2 KB–32 KB, >50% at 2 KB.
pub fn mpi_message_cdf() -> EmpiricalCdf {
    EmpiricalCdf::new(vec![
        (2_048, 0.55),
        (4_096, 0.70),
        (8_192, 0.82),
        (16_384, 0.92),
        (32_768, 1.00),
    ])
    .expect("static CDF is valid")
}

/// The I/O message sizes of §5.2.2.
pub fn io_message_sizes() -> [u64; 4] {
    [512 * 1024, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024]
}

/// Draw one I/O message size.
pub fn sample_io_size<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let sizes = io_message_sizes();
    sizes[rng.gen_range(0..sizes.len())]
}

/// Role assignment for the HPC scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpcRole {
    /// Receives I/O traffic.
    IoServer,
    /// Sends I/O messages to I/O servers.
    IoClient,
    /// Exchanges MPI messages with other MPI nodes.
    Mpi,
}

/// Assign roles to `hosts_per_rack`-sized racks: `io_servers_per_rack`
/// random I/O servers per rack, then `io_client_frac` of the remaining
/// nodes as I/O clients, the rest MPI. Returns one role per host, in host
/// order.
pub fn assign_roles<R: Rng + ?Sized>(
    n_hosts: usize,
    hosts_per_rack: usize,
    io_servers_per_rack: usize,
    io_client_frac: f64,
    rng: &mut R,
) -> Vec<HpcRole> {
    assert!(hosts_per_rack > 0 && io_servers_per_rack <= hosts_per_rack);
    assert!((0.0..=1.0).contains(&io_client_frac));
    let mut roles = vec![HpcRole::Mpi; n_hosts];
    // Per-rack I/O servers.
    let mut rack_start = 0;
    while rack_start < n_hosts {
        let rack_end = (rack_start + hosts_per_rack).min(n_hosts);
        let rack = rack_end - rack_start;
        let servers = io_servers_per_rack.min(rack);
        // Sample distinct in-rack offsets.
        let mut chosen = Vec::with_capacity(servers);
        while chosen.len() < servers {
            let off = rng.gen_range(0..rack);
            if !chosen.contains(&off) {
                chosen.push(off);
            }
        }
        for off in chosen {
            roles[rack_start + off] = HpcRole::IoServer;
        }
        rack_start = rack_end;
    }
    // I/O clients among the rest.
    for r in roles.iter_mut() {
        if *r == HpcRole::Mpi && rng.gen::<f64>() < io_client_frac {
            *r = HpcRole::IoClient;
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mpi_sizes_in_range_with_2kb_majority() {
        let cdf = mpi_message_cdf();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut at_2k = 0;
        for _ in 0..n {
            let s = cdf.sample(&mut rng);
            assert!((2_048..=32_768).contains(&s));
            if s == 2_048 {
                at_2k += 1;
            }
        }
        let frac = at_2k as f64 / n as f64;
        assert!(frac > 0.5, "over 50% of MPI messages are 2KB, got {frac}");
    }

    #[test]
    fn io_sizes_are_the_four_paper_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let allowed = io_message_sizes();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let s = sample_io_size(&mut rng);
            assert!(allowed.contains(&s));
            seen.insert(s);
        }
        assert_eq!(seen.len(), 4, "all four sizes should appear");
    }

    #[test]
    fn role_assignment_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        // 64 hosts in racks of 8, 4 I/O servers per rack, 25% clients.
        let roles = assign_roles(64, 8, 4, 0.25, &mut rng);
        assert_eq!(roles.len(), 64);
        for rack in roles.chunks(8) {
            let servers = rack.iter().filter(|r| **r == HpcRole::IoServer).count();
            assert_eq!(servers, 4, "exactly 4 I/O servers per rack");
        }
        let clients = roles.iter().filter(|r| **r == HpcRole::IoClient).count();
        let non_servers = 64 - 32;
        let frac = clients as f64 / non_servers as f64;
        assert!(frac > 0.05 && frac < 0.5, "client fraction {frac}");
    }

    #[test]
    fn partial_last_rack_is_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let roles = assign_roles(10, 8, 4, 0.0, &mut rng);
        // Second rack has 2 hosts; both can be servers at most.
        let servers_last = roles[8..]
            .iter()
            .filter(|r| **r == HpcRole::IoServer)
            .count();
        assert!(servers_last <= 2);
    }
}
