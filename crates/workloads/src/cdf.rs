//! Empirical CDFs with inverse-transform sampling.

use rand::Rng;

/// A piecewise-linear empirical CDF over byte sizes.
///
/// Points are `(value, cumulative probability)` with strictly increasing
/// values and non-decreasing probabilities ending at 1.0. Sampling draws a
/// uniform `u ∈ [0, 1)` and interpolates linearly between the surrounding
/// points (inverse-transform sampling).
///
/// ```
/// use lossless_workloads::EmpiricalCdf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cdf = EmpiricalCdf::new(vec![(1_000, 0.0), (10_000, 1.0)]).unwrap();
/// assert_eq!(cdf.inverse(0.5), 5_500);
/// let mut rng = StdRng::seed_from_u64(1);
/// let s = cdf.sample(&mut rng);
/// assert!((1_000..=10_000).contains(&s));
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(u64, f64)>,
}

/// Errors constructing a CDF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfError {
    /// Fewer than two points.
    TooFewPoints,
    /// Values not strictly increasing.
    NonIncreasingValues,
    /// Probabilities not non-decreasing or outside [0, 1].
    InvalidProbabilities,
    /// The last probability is not 1.0.
    DoesNotReachOne,
}

impl EmpiricalCdf {
    /// Validate and build a CDF.
    pub fn new(points: Vec<(u64, f64)>) -> Result<Self, CdfError> {
        if points.len() < 2 {
            return Err(CdfError::TooFewPoints);
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(CdfError::NonIncreasingValues);
            }
            if w[1].1 < w[0].1 {
                return Err(CdfError::InvalidProbabilities);
            }
        }
        if points.iter().any(|p| !(0.0..=1.0).contains(&p.1)) {
            return Err(CdfError::InvalidProbabilities);
        }
        if (points.last().unwrap().1 - 1.0).abs() > 1e-12 {
            return Err(CdfError::DoesNotReachOne);
        }
        Ok(EmpiricalCdf { points })
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.inverse(u)
    }

    /// The value at cumulative probability `u` (the quantile function).
    pub fn inverse(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 <= p0 {
                    return v1;
                }
                let frac = (u - p0) / (p1 - p0);
                return v0 + ((v1 - v0) as f64 * frac) as u64;
            }
        }
        self.points.last().unwrap().0
    }

    /// The mean of the piecewise-linear distribution, in bytes.
    pub fn mean(&self) -> f64 {
        // Expectation of the linear interpolation: the first point carries
        // its own probability mass; each segment contributes its midpoint
        // times its probability span.
        let mut mean = self.points[0].0 as f64 * self.points[0].1;
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            mean += (p1 - p0) * (v0 as f64 + v1 as f64) / 2.0;
        }
        mean
    }

    /// The raw points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> EmpiricalCdf {
        EmpiricalCdf::new(vec![(1_000, 0.0), (2_000, 0.5), (10_000, 1.0)]).unwrap()
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert_eq!(
            EmpiricalCdf::new(vec![(1, 1.0)]).unwrap_err(),
            CdfError::TooFewPoints
        );
        assert_eq!(
            EmpiricalCdf::new(vec![(5, 0.0), (5, 1.0)]).unwrap_err(),
            CdfError::NonIncreasingValues
        );
        assert_eq!(
            EmpiricalCdf::new(vec![(1, 0.5), (2, 0.2), (3, 1.0)]).unwrap_err(),
            CdfError::InvalidProbabilities
        );
        assert_eq!(
            EmpiricalCdf::new(vec![(1, 0.0), (2, 0.9)]).unwrap_err(),
            CdfError::DoesNotReachOne
        );
    }

    #[test]
    fn inverse_interpolates_linearly() {
        let c = simple();
        assert_eq!(c.inverse(0.0), 1_000);
        assert_eq!(c.inverse(0.25), 1_500);
        assert_eq!(c.inverse(0.5), 2_000);
        assert_eq!(c.inverse(0.75), 6_000);
        assert_eq!(c.inverse(1.0), 10_000);
    }

    #[test]
    fn samples_stay_in_support() {
        let c = simple();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = c.sample(&mut rng);
            assert!((1_000..=10_000).contains(&s));
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let c = simple();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| c.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let analytic = c.mean();
        assert!(
            (emp - analytic).abs() / analytic < 0.01,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let c = simple();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| c.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn point_mass_at_first_value() {
        // A CDF whose first point has positive probability puts mass there.
        let c = EmpiricalCdf::new(vec![(2_000, 0.5), (4_000, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let at_min = (0..n).filter(|_| c.sample(&mut rng) == 2_000).count();
        let frac = at_min as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "point-mass fraction {frac}");
    }
}
