//! Poisson flow arrivals targeting an average link load.
//!
//! The paper's realistic-workload experiments (§5.2.1: "we adjust the flow
//! generation rates to set the average link loads to 60%") generate flows
//! with exponentially distributed inter-arrival times. Given a per-host
//! link rate, a mean flow size and a target load, the arrival rate per
//! sender is `λ = load · rate / (8 · mean_size)` flows per second.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use rand::Rng;

/// An exponential inter-arrival generator for one sender.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean inter-arrival time in seconds.
    mean_gap_secs: f64,
    next: SimTime,
}

impl PoissonArrivals {
    /// Arrivals at `lambda` flows per second, starting from `start`.
    pub fn with_rate(lambda: f64, start: SimTime) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite());
        PoissonArrivals {
            mean_gap_secs: 1.0 / lambda,
            next: start,
        }
    }

    /// Arrivals sized to keep one sender's link at `load` (0, 1] given its
    /// line `rate` and the workload's `mean_flow_bytes`.
    pub fn for_load(load: f64, rate: Rate, mean_flow_bytes: f64, start: SimTime) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        assert!(mean_flow_bytes > 0.0);
        let lambda = load * rate.as_bps() as f64 / (8.0 * mean_flow_bytes);
        Self::with_rate(lambda, start)
    }

    /// The arrival rate in flows per second.
    pub fn lambda(&self) -> f64 {
        1.0 / self.mean_gap_secs
    }

    /// Draw the next arrival instant (strictly after the previous one).
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimTime {
        // Inverse-transform exponential: gap = -mean * ln(1 - u).
        let u: f64 = rng.gen();
        let gap_secs = -self.mean_gap_secs * (1.0 - u).ln();
        let gap = SimDuration::from_ps((gap_secs * 1e12).max(1.0) as u64);
        self.next += gap;
        self.next
    }

    /// All arrivals strictly before `end`.
    pub fn arrivals_until<R: Rng + ?Sized>(&mut self, end: SimTime, rng: &mut R) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lambda_from_load() {
        // 60% of 40 Gbps with 100 KB mean flows: λ = 0.6·40e9/(8·1e5)
        // = 30000 flows/s.
        let p = PoissonArrivals::for_load(0.6, Rate::from_gbps(40), 100_000.0, SimTime::ZERO);
        assert!((p.lambda() - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn mean_gap_matches_lambda() {
        let mut p = PoissonArrivals::with_rate(10_000.0, SimTime::ZERO);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut last = SimTime::ZERO;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.next_arrival(&mut rng);
            sum += t.saturating_since(last).as_secs_f64();
            last = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 1e-4).abs() / 1e-4 < 0.02, "mean gap {mean}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonArrivals::with_rate(1e6, SimTime::ZERO);
        let mut rng = StdRng::seed_from_u64(4);
        let ts = p.arrivals_until(SimTime::from_ms(5), &mut rng);
        assert!(!ts.is_empty());
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn arrivals_until_respects_bound() {
        let mut p = PoissonArrivals::with_rate(50_000.0, SimTime::from_us(100));
        let mut rng = StdRng::seed_from_u64(9);
        let end = SimTime::from_ms(2);
        for t in p.arrivals_until(end, &mut rng) {
            assert!(t < end);
            assert!(t > SimTime::from_us(100));
        }
    }

    #[test]
    #[should_panic]
    fn zero_load_rejected() {
        let _ = PoissonArrivals::for_load(0.0, Rate::from_gbps(40), 1e5, SimTime::ZERO);
    }
}
