//! Synchronized incast bursts — the §3 observation workload and the §5
//! victim-flow scenarios.
//!
//! The paper's burst pattern: hosts A0–A14 send *concurrent* fixed-size
//! bursts (64 KB in §3) to one receiver. A burst is smaller than the BDP,
//! so end-to-end congestion control cannot regulate it — the senders
//! transmit at line rate and only hop-by-hop flow control restrains them.
//! In §3 the bursting continues for about 3 ms (each sender launches its
//! next burst back-to-back); in §5 rounds of concurrent bursts arrive with
//! exponentially distributed inter-arrival gaps.

use lossless_flowctl::{SimDuration, SimTime};
use rand::Rng;

/// One planned burst: which sender, when, and how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Index of the bursting sender (into the experiment's burster list).
    pub sender: usize,
    /// Launch time.
    pub at: SimTime,
    /// Burst size in bytes.
    pub bytes: u64,
}

/// A plan of bursts for a set of senders.
#[derive(Debug, Clone, Default)]
pub struct BurstPlan {
    /// The bursts, sorted by launch time.
    pub bursts: Vec<Burst>,
}

impl BurstPlan {
    /// The §3 pattern: every sender launches `rounds` back-to-back bursts
    /// of `bytes` starting at `start`. Because each sender's next burst is
    /// released only as the previous one drains, the launch times here are
    /// all `start`; the simulator's flow-control naturally serializes them
    /// — callers register `rounds` consecutive flows per sender (the burst
    /// data keeps the bottleneck saturated for
    /// `rounds × senders × bytes / C`).
    pub fn continuous(senders: usize, rounds: usize, bytes: u64, start: SimTime) -> BurstPlan {
        let mut bursts = Vec::with_capacity(senders * rounds);
        for s in 0..senders {
            for _ in 0..rounds {
                bursts.push(Burst {
                    sender: s,
                    at: start,
                    bytes,
                });
            }
        }
        BurstPlan { bursts }
    }

    /// The §5 pattern: rounds of concurrent bursts; all senders launch
    /// together each round and the gaps between rounds are exponentially
    /// distributed with mean `mean_gap`.
    pub fn rounds<R: Rng + ?Sized>(
        senders: usize,
        bytes: u64,
        mean_gap: SimDuration,
        start: SimTime,
        end: SimTime,
        rng: &mut R,
    ) -> BurstPlan {
        assert!(mean_gap > SimDuration::ZERO);
        let mut bursts = Vec::new();
        let mut t = start;
        while t < end {
            for s in 0..senders {
                bursts.push(Burst {
                    sender: s,
                    at: t,
                    bytes,
                });
            }
            let u: f64 = rng.gen();
            let gap_secs = -mean_gap.as_secs_f64() * (1.0 - u).ln();
            t += SimDuration::from_ps((gap_secs * 1e12).max(1.0) as u64);
        }
        BurstPlan { bursts }
    }

    /// Total bytes across all bursts.
    pub fn total_bytes(&self) -> u64 {
        self.bursts.iter().map(|b| b.bytes).sum()
    }

    /// Number of bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }
}

/// How many back-to-back 64 KB rounds each of `senders` bursters needs so
/// that the shared bottleneck (at `bottleneck_gbps`, of which the bursters
/// get almost all) stays saturated for `duration` — the paper's "bursts
/// last for about 3 ms".
pub fn rounds_for_duration(
    senders: usize,
    burst_bytes: u64,
    bottleneck_gbps: u64,
    duration: SimDuration,
) -> usize {
    assert!(senders > 0 && burst_bytes > 0 && bottleneck_gbps > 0);
    let total_bytes = bottleneck_gbps as f64 * 1e9 / 8.0 * duration.as_secs_f64();
    let per_sender = total_bytes / senders as f64;
    (per_sender / burst_bytes as f64).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn continuous_plan_counts() {
        let p = BurstPlan::continuous(15, 4, 64 * 1024, SimTime::ZERO);
        assert_eq!(p.len(), 60);
        assert_eq!(p.total_bytes(), 60 * 64 * 1024);
        assert!(p.bursts.iter().all(|b| b.at == SimTime::ZERO));
    }

    #[test]
    fn paper_burst_duration_sizing() {
        // 15 senders, 64 KB bursts, 40G bottleneck, 3 ms: each sender gets
        // ~2.5 Gbps → ~1 MB → ceil(1e6/65536) = 16 rounds.
        let r = rounds_for_duration(15, 64 * 1024, 40, SimDuration::from_ms(3));
        assert_eq!(r, 16);
        // Sanity: total volume drains in ~3 ms at 40G.
        let total = (15 * r) as f64 * 64.0 * 1024.0;
        let drain_ms = total * 8.0 / 40e9 * 1e3;
        assert!((drain_ms - 3.0).abs() < 0.25, "drain {drain_ms} ms");
    }

    #[test]
    fn rounds_are_synchronized_and_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BurstPlan::rounds(
            15,
            64 * 1024,
            SimDuration::from_us(500),
            SimTime::ZERO,
            SimTime::from_ms(10),
            &mut rng,
        );
        assert!(!p.is_empty());
        // Every distinct launch time must have exactly 15 senders.
        let mut by_time = std::collections::BTreeMap::new();
        for b in &p.bursts {
            assert!(b.at < SimTime::from_ms(10));
            *by_time.entry(b.at).or_insert(0usize) += 1;
        }
        assert!(by_time.values().all(|&n| n == 15));
        assert!(by_time.len() >= 2, "expect multiple rounds in 10 ms");
    }

    #[test]
    fn round_plan_is_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            BurstPlan::rounds(
                4,
                64 * 1024,
                SimDuration::from_us(300),
                SimTime::ZERO,
                SimTime::from_ms(5),
                &mut rng,
            )
            .bursts
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }
}
