//! Property-based tests of the workload generators.

use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_workloads::burst::{rounds_for_duration, BurstPlan};
use lossless_workloads::{hadoop, websearch, EmpiricalCdf, PoissonArrivals};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The quantile function is monotone and stays inside the support.
    #[test]
    fn cdf_inverse_is_monotone(points in proptest::collection::vec(1u64..10_000_000, 2..12)) {
        let mut vals: Vec<u64> = points;
        vals.sort_unstable();
        vals.dedup();
        if vals.len() < 2 { return Ok(()); }
        let n = vals.len();
        let pts: Vec<(u64, f64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        let cdf = EmpiricalCdf::new(pts.clone()).unwrap();
        let lo = pts[0].0;
        let hi = pts[n - 1].0;
        let mut prev = 0u64;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let v = cdf.inverse(u);
            prop_assert!(v >= lo && v <= hi, "quantile outside support");
            prop_assert!(v >= prev, "quantile not monotone");
            prev = v;
        }
    }

    /// Samples always fall inside the distribution's support.
    #[test]
    fn samples_within_support(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for cdf in [hadoop(), websearch()] {
            let lo = cdf.points().first().unwrap().0;
            let hi = cdf.points().last().unwrap().0;
            for _ in 0..200 {
                let s = cdf.sample(&mut rng);
                prop_assert!(s >= lo && s <= hi);
            }
        }
    }

    /// Poisson arrivals are strictly increasing and roughly match the
    /// requested rate over many draws.
    #[test]
    fn poisson_rate_is_respected(lambda_k in 1u64..50, seed in any::<u64>()) {
        let lambda = lambda_k as f64 * 1000.0;
        let mut arr = PoissonArrivals::with_rate(lambda, SimTime::ZERO);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2000usize;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let t = arr.next_arrival(&mut rng);
            prop_assert!(t > last);
            last = t;
        }
        let measured = n as f64 / last.as_secs_f64();
        prop_assert!((measured - lambda).abs() / lambda < 0.15,
            "measured {measured} vs requested {lambda}");
    }

    /// Burst plans: every round is fully synchronized and within bounds.
    #[test]
    fn burst_rounds_synchronized(senders in 1usize..20, gap_us in 50u64..2000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let end = SimTime::from_ms(20);
        let plan = BurstPlan::rounds(senders, 64 * 1024, SimDuration::from_us(gap_us), SimTime::ZERO, end, &mut rng);
        let mut by_time = std::collections::BTreeMap::new();
        for b in &plan.bursts {
            prop_assert!(b.at < end);
            prop_assert!(b.sender < senders);
            *by_time.entry(b.at).or_insert(0usize) += 1;
        }
        prop_assert!(by_time.values().all(|&c| c == senders));
    }

    /// rounds_for_duration produces enough volume to cover the duration,
    /// without wild oversizing.
    #[test]
    fn burst_sizing_covers_duration(senders in 1usize..32, gbps in 10u64..100, ms in 1u64..10) {
        let dur = SimDuration::from_ms(ms);
        let rounds = rounds_for_duration(senders, 64 * 1024, gbps, dur);
        let volume_bits = (senders * rounds) as f64 * 64.0 * 1024.0 * 8.0;
        let needed_bits = gbps as f64 * 1e9 * dur.as_secs_f64();
        prop_assert!(volume_bits >= needed_bits * 0.999, "undersized burst plan");
        let slack = (senders * 64 * 1024) as f64 * 8.0;
        prop_assert!(volume_bits <= needed_bits + slack + 1.0);
    }

    /// Rate arithmetic: serialize_time and bytes_in are inverse-consistent
    /// for whole-byte amounts.
    #[test]
    fn rate_roundtrip(gbps in 1u64..400, bytes in 1u64..10_000_000) {
        let r = Rate::from_gbps(gbps);
        let d = r.serialize_time(bytes);
        let back = r.bytes_in(d);
        prop_assert!(back >= bytes.saturating_sub(1) && back <= bytes + 1);
    }
}
