//! Named generators. `StdRng` here is xoshiro256** — a different (and
//! faster) algorithm than upstream `rand`'s ChaCha12, but it honors the
//! same contract the simulator relies on: identical seed, identical
//! stream, on every platform.

use crate::{splitmix64, RngCore, SeedableRng};

/// Deterministic workhorse generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
