//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic across platforms and
//! hasher seeds, which is exactly what the simulator's reproducibility
//! contract requires. It is *not* a cryptographic RNG.

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be built from a seed. Only the `seed_from_u64`
/// entry point is used by this workspace.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard"
/// distribution: `[0, 1)` for floats, the full domain for integers,
/// fair coin for `bool`.
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1234);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn generic_unsized_rng_arg() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = StdRng::seed_from_u64(5);
        assert!(draw(&mut r) < 100);
    }
}
