//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of criterion's surface the workspace's benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simple wall-clock sampling:
//! each sample times a batch of iterations sized to run ≥ ~2 ms, and the
//! report prints min / median / mean ns-per-iteration to stdout.
//! Results are also appended to the `CRITERION_JSON` file (one JSON
//! object per line) when that environment variable is set, which is how
//! the sweep harness collects before/after events-per-second numbers.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A single measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub id: String,
    pub iters_per_sample: u64,
    pub samples: usize,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Calibrate: grow the batch size until one batch takes >= ~2 ms, so
    // per-sample timing noise stays small relative to the measurement.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let m = Measurement {
        id: id.to_string(),
        iters_per_sample: iters,
        samples,
        min_ns: per_iter_ns[0],
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
    };
    report(&m);
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(m: &Measurement) {
    println!(
        "{:<50} time: [{} {} {}]  ({} samples × {} iters)",
        m.id,
        fmt_ns(m.min_ns),
        fmt_ns(m.median_ns),
        fmt_ns(m.mean_ns),
        m.samples,
        m.iters_per_sample,
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                m.id.replace('"', "'"),
                m.min_ns,
                m.median_ns,
                m.mean_ns,
                m.samples,
                m.iters_per_sample,
            );
        }
    }
}

/// Collect benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
