//! `tcdsim` — command-line front end for the TCD reproduction.
//!
//! ```console
//! $ tcdsim observe --network cee --multi-cp --tcd
//! $ tcdsim victim --network ib --tcd --csv out/
//! $ tcdsim fairness --cc timely
//! $ tcdsim trees --at-ms 1.0
//! ```
//!
//! Each subcommand drives one of the shared scenarios and prints a compact
//! report; `--csv <dir>` additionally dumps the raw port samples and flow
//! outcomes for external plotting.

use std::process::exit;
use tcd_repro::flowctl::SimTime;
use tcd_repro::harness::{self, Sweep};
use tcd_repro::netsim::cchooks::FixedRate;
use tcd_repro::obs_export;
use tcd_repro::report;
use tcd_repro::scenarios::{self, observation, victim, Cc, CcAlgo, Network};
use tcd_repro::tcd::tree;

fn usage() -> ! {
    eprintln!(
        "usage: tcdsim <command> [options]

commands:
  observe    the paper's single/multi congestion point scenario (Figs. 3/4/12/13)
  victim     the head-of-line victim scenario (Table 3)
  fairness   the fairness scenario (Fig. 20)
  trees      reconstruct congestion trees mid-incast (Fig. 5)
  sweep      the victim grid (network x detector x seed) on a worker pool
  trace      run a named scenario and emit a Chrome/Perfetto trace.json
  metrics    run a named scenario and emit the metrics registry as JSON
  perf       self-profile the fat-tree k=6 bench (hot-event-kind report +
             wall-clock Perfetto track), or render/gate the perf history
  lint       static analysis: workspace code lint + scenario topology checks

common options:
  --network cee|ib     (default cee)
  --tcd                use the TCD detector (default: binary baseline)
  --seed N             (default 1)
  --csv DIR            dump port samples + flow outcomes as CSV

observe options:   --multi-cp
fairness options:  --cc dcqcn|timely|ibcc   (default dcqcn)
trees options:     --at-ms F                (default 1.0)
trace/metrics:     <scenario>               fig03|fig04|fig12|fig13|ib|ib-tcd
                                            or a fault/deadlock scenario:
                                            fault-flap-incast|fault-degrade|
                                            deadlock-triangle|deadlock-recovery
                   --end-ms F               simulated duration (default 6.0)
                   --out PATH               output file (default
                                            results/trace_<scenario>.json or
                                            results/metrics_<scenario>.json)
sweep options:     --seeds N                seeds per cell (default 3)
                   --threads N              worker threads (default: TCD_THREADS
                                            or the machine's parallelism; results
                                            are identical at any value)
                   --out DIR                report directory (default results)
                   --history PATH           also append the fat-tree k=6 bench
                                            numbers to the perf-trajectory store
                                            (append-only JSONL)
perf options:      --top N                  hot-kind report depth (default 8)
                   --json                   emit the full profile as JSON on
                                            stdout instead of the text report
                   --out PATH               wall-clock Perfetto trace output
                                            (default results/perf_fat_tree_k6.json)
                   --history PATH           render the perf-trajectory store as a
                                            trend report instead of benching
                   --gate                   with --history: fail (exit 1) unless
                                            each scenario's newest entry is >= 90%
                                            of the trailing median of comparable
                                            (same-fingerprint) prior entries
                   --partitions N           partition workers for the profiled
                                            run (default 1 = serial; event count
                                            and fingerprint are identical at
                                            any value)
lint options:      --code                   run only the workspace code lint
                   --topo NAME              run only the topology analysis of
                                            NAME (repeatable); without flags,
                                            lint runs the code lint plus every
                                            committed scenario
                   --json                   emit one machine-readable JSON
                                            report line instead of text
                   --spec-table PATH        check the Fig. 6 conformance pass
                                            against PATH instead of the
                                            committed crates/simlint/fig6.spec"
    );
    exit(2)
}

struct Args {
    cmd: String,
    network: Network,
    tcd: bool,
    multi_cp: bool,
    seed: u64,
    csv: Option<String>,
    cc: CcAlgo,
    at_ms: f64,
    seeds: u64,
    threads: usize,
    out: Option<String>,
    lint_code: bool,
    lint_topos: Vec<String>,
    lint_json: bool,
    lint_spec_table: Option<String>,
    scenario: Option<String>,
    end_ms: f64,
    history: Option<String>,
    gate: bool,
    top: usize,
    partitions: usize,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let Some(cmd) = argv.get(1).cloned() else {
        usage()
    };
    let mut a = Args {
        cmd,
        network: Network::Cee,
        tcd: false,
        multi_cp: false,
        seed: 1,
        csv: None,
        cc: CcAlgo::Dcqcn,
        at_ms: 1.0,
        seeds: 3,
        threads: harness::default_threads(),
        out: None,
        lint_code: false,
        lint_topos: Vec::new(),
        lint_json: false,
        lint_spec_table: None,
        scenario: None,
        end_ms: 6.0,
        history: None,
        gate: false,
        top: 8,
        partitions: 1,
    };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--network" => {
                a.network = match argv.get(i + 1).map(String::as_str) {
                    Some("cee") => Network::Cee,
                    Some("ib") => Network::Ib,
                    _ => usage(),
                };
                i += 2;
            }
            "--tcd" => {
                a.tcd = true;
                i += 1;
            }
            "--multi-cp" => {
                a.multi_cp = true;
                i += 1;
            }
            "--seed" => {
                a.seed = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--csv" => {
                a.csv = Some(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--cc" => {
                a.cc = match argv.get(i + 1).map(String::as_str) {
                    Some("dcqcn") => CcAlgo::Dcqcn,
                    Some("timely") => CcAlgo::Timely,
                    Some("ibcc") => CcAlgo::IbCc,
                    _ => usage(),
                };
                i += 2;
            }
            "--at-ms" => {
                a.at_ms = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seeds" => {
                a.seeds = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads" => {
                a.threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                a.out = Some(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--end-ms" => {
                a.end_ms = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &f64| v > 0.0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--code" => {
                a.lint_code = true;
                i += 1;
            }
            "--topo" => {
                a.lint_topos
                    .push(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--json" => {
                a.lint_json = true;
                i += 1;
            }
            "--spec-table" => {
                a.lint_spec_table = Some(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--history" => {
                a.history = Some(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--gate" => {
                a.gate = true;
                i += 1;
            }
            "--partitions" => {
                a.partitions = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--top" => {
                a.top = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            s if !s.starts_with('-') && a.scenario.is_none() => {
                a.scenario = Some(s.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    a
}

fn dump_csv(sim: &tcd_repro::netsim::Simulator, dir: &str, tag: &str) {
    let ports = format!("{dir}/{tag}_ports.csv");
    let flows = format!("{dir}/{tag}_flows.csv");
    report::write_port_samples_csv(sim, &ports).expect("write ports csv");
    report::write_flows_csv(sim, &flows).expect("write flows csv");
    println!("wrote {ports} and {flows}");
}

fn cmd_observe(a: &Args) {
    let r = observation::run(observation::Options {
        network: a.network,
        multi_cp: a.multi_cp,
        use_tcd: a.tcd,
        ..Default::default()
    });
    let mut t = report::Table::new(vec!["flow", "pkts", "CE", "UE"]);
    for (name, f) in [("F0", r.f0), ("F1", r.f1), ("F2", r.f2)] {
        let d = r.sim.trace.flows[f.0 as usize].delivered;
        t.row(vec![
            name.to_string(),
            d.pkts.to_string(),
            d.ce.to_string(),
            d.ue.to_string(),
        ]);
    }
    t.print();
    println!("PAUSE frames: {}", r.sim.trace.pause_frames);
    if let Some(dir) = &a.csv {
        dump_csv(&r.sim, dir, "observe");
    }
}

fn cmd_victim(a: &Args) {
    let r = victim::run(victim::Options {
        network: a.network,
        use_tcd: a.tcd,
        seed: a.seed,
        ..Default::default()
    });
    let flagged = r
        .victims
        .iter()
        .filter(|f| r.sim.trace.flows[f.0 as usize].delivered.ce > 0)
        .count();
    println!(
        "victims: {} | CE-flagged: {flagged} ({:.1}%) | mean victim FCT: {:.1} us",
        r.victims.len(),
        100.0 * r.victim_ce_fraction(),
        r.victim_mean_fct().unwrap_or(0.0) * 1e6
    );
    if let Some(dir) = &a.csv {
        dump_csv(&r.sim, dir, "victim");
    }
}

fn cmd_fairness(a: &Args) {
    let cc = Cc {
        algo: a.cc,
        tcd: true,
    };
    let r = scenarios::fairness::run(cc, SimTime::from_ms(20));
    let last: Vec<String> = r
        .b_flows
        .iter()
        .map(|f| {
            let d = r.sim.trace.flows[f.0 as usize].delivered.bytes;
            format!("{:.2} MB", d as f64 / 1e6)
        })
        .collect();
    println!("B-flow delivered volumes after 20 ms: {}", last.join(" / "));
    if let Some(dir) = &a.csv {
        dump_csv(&r.sim, dir, "fairness");
    }
}

fn cmd_trees(a: &Args) {
    use tcd_repro::netsim::routing::RouteSelect;
    use tcd_repro::netsim::topology::figure2;
    use tcd_repro::netsim::Simulator;

    let fig = figure2(Default::default());
    let cc = Cc {
        algo: if a.network == Network::Ib {
            CcAlgo::IbCc
        } else {
            CcAlgo::Dcqcn
        },
        tcd: true,
    };
    let mut cfg = scenarios::default_config(a.network, true, SimTime::from_ms(6));
    cfg.feedback = cc.feedback();
    cfg.seed = a.seed;
    let select = match a.network {
        Network::Cee => RouteSelect::Ecmp,
        Network::Ib => RouteSelect::DModK,
    };
    let mut sim = Simulator::new(fig.topo.clone(), cfg, select);
    sim.add_flow(fig.s1, fig.r1, 40_000_000, SimTime::ZERO, cc.controller());
    for &x in &fig.bursters {
        sim.add_flow(
            x,
            fig.r1,
            1_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
    }
    sim.run_until(SimTime::from_ps((a.at_ms * 1e9) as u64));
    let snap = sim.congestion_snapshot(sim.config().data_prio);
    let ts = tree::trees(&snap);
    println!("congestion trees at {} ms: {}", a.at_ms, ts.len());
    for t in &ts {
        let node = t.root >> 16;
        let port = t.root & 0xffff;
        println!(
            "  root {} port {port} | {} leaves | depth {}",
            sim.topology().name(tcd_repro::netsim::NodeId(node as u32)),
            t.leaves.len(),
            t.depth(&snap)
        );
    }
    let bad = tree::inconsistent_leaves(&snap);
    if !bad.is_empty() {
        println!("inconsistent leaves: {bad:?}");
    }
}

fn cmd_sweep(a: &Args) {
    let mut sweep = Sweep::new();
    for network in [Network::Cee, Network::Ib] {
        for use_tcd in [false, true] {
            for seed in 1..=a.seeds {
                let net = if network == Network::Ib { "ib" } else { "cee" };
                let det = if use_tcd { "tcd" } else { "base" };
                sweep.add(format!("victim_{net}_{det}_s{seed}"), move || {
                    let r = victim::run(victim::Options {
                        network,
                        use_tcd,
                        seed,
                        ..Default::default()
                    });
                    harness::outcome_of(
                        &r.sim,
                        vec![
                            ("victim_ce_fraction".into(), r.victim_ce_fraction()),
                            (
                                "victim_mean_fct_us".into(),
                                r.victim_mean_fct().unwrap_or(0.0) * 1e6,
                            ),
                            ("pause_frames".into(), r.sim.trace.pause_frames as f64),
                        ],
                    )
                });
            }
        }
    }
    let n = sweep.len();
    println!("running {n} victim runs on {} threads...", a.threads);
    let rep = sweep.run(a.threads);
    let mut t = report::Table::new(vec!["run", "CE frac", "mean FCT (us)", "PAUSE"]);
    for r in &rep.results {
        t.row(vec![
            r.id.clone(),
            report::pct(r.outcome.metric("victim_ce_fraction").unwrap_or(0.0)),
            report::f2(r.outcome.metric("victim_mean_fct_us").unwrap_or(0.0)),
            format!("{}", r.outcome.metric("pause_frames").unwrap_or(0.0) as u64),
        ]);
    }
    t.print();
    // Head-to-head single-run throughput on the fat-tree k=6 realistic
    // workload: the timing-wheel speedup is re-measured on every sweep
    // and lands in the perf record next to the grid numbers, so the
    // trajectory in the committed BENCH_sweep.json stays honest. The
    // fingerprint equality assert doubles as an end-to-end heap/wheel
    // twin check.
    println!("timing fat-tree k=6 workload: heap vs wheel...");
    use tcd_repro::netsim::QueueKind;
    let tp_heap = harness::timed_throughput(|| scenarios::fat_tree_k6_bench(QueueKind::Heap));
    let tp_wheel = harness::timed_throughput(|| scenarios::fat_tree_k6_bench(QueueKind::Wheel));
    assert_eq!(
        (tp_heap.fingerprint, tp_heap.events),
        (tp_wheel.fingerprint, tp_wheel.events),
        "heap and wheel cores disagree on the fat-tree k=6 workload"
    );
    let (eps_heap, eps_wheel) = (tp_heap.best_eps(), tp_wheel.best_eps());
    let heap_note = format!(
        "{:.3}M events/s ({} events, fingerprint {:016x})",
        eps_heap / 1e6,
        tp_heap.events,
        tp_heap.fingerprint
    );
    let wheel_note = format!(
        "{:.3}M events/s ({:.2}x heap, same events + fingerprint)",
        eps_wheel / 1e6,
        eps_wheel / eps_heap.max(1.0)
    );
    println!("  heap:  {heap_note}\n  wheel: {wheel_note}");
    // Intra-run parallel lanes: the same k=6 workload split across 8
    // partition workers, then the larger fat-tree k=8 workload serial
    // vs parallel. The equality asserts are the conservative-parallel
    // executor's headline guarantee measured end to end on every sweep:
    // same event count, same fingerprint, at any worker count.
    println!("timing fat-tree k=6 workload: 8 partition workers...");
    let tp_wheel_p8 =
        harness::timed_throughput(|| scenarios::fat_tree_k6_bench_par(QueueKind::Wheel, 8));
    assert_eq!(
        (tp_wheel.fingerprint, tp_wheel.events),
        (tp_wheel_p8.fingerprint, tp_wheel_p8.events),
        "parallel fat-tree k=6 run diverged from serial"
    );
    println!("timing fat-tree k=8 workload: serial vs 8 partition workers...");
    let tp_k8 = harness::timed_throughput(|| scenarios::fat_tree_k8_bench(QueueKind::Wheel, 1));
    let tp_k8_p8 = harness::timed_throughput(|| scenarios::fat_tree_k8_bench(QueueKind::Wheel, 8));
    assert_eq!(
        (tp_k8.fingerprint, tp_k8.events),
        (tp_k8_p8.fingerprint, tp_k8_p8.events),
        "parallel fat-tree k=8 run diverged from serial"
    );
    let eps_k6_p8 = tp_wheel_p8.best_eps();
    let (eps_k8, eps_k8_p8) = (tp_k8.best_eps(), tp_k8_p8.best_eps());
    let k6_p8_note = format!(
        "{:.3}M events/s ({:.2}x serial wheel, same events + fingerprint)",
        eps_k6_p8 / 1e6,
        eps_k6_p8 / eps_wheel.max(1.0)
    );
    let k8_note = format!(
        "{:.3}M events/s ({} events, fingerprint {:016x})",
        eps_k8 / 1e6,
        tp_k8.events,
        tp_k8.fingerprint
    );
    let k8_p8_note = format!(
        "{:.3}M events/s ({:.2}x serial, same events + fingerprint)",
        eps_k8_p8 / 1e6,
        eps_k8_p8 / eps_k8.max(1.0)
    );
    println!("  k6 x8: {k6_p8_note}\n  k8:    {k8_note}\n  k8 x8: {k8_p8_note}");
    let out_dir = a.out.as_deref().unwrap_or("results");
    let results = format!("{out_dir}/sweep.json");
    let bench = format!("{out_dir}/BENCH_sweep.json");
    rep.write_json(&results).expect("write sweep report");
    // The bare-number notes are machine-readable: scripts/ci.sh gates on
    // fat_tree_k6_wheel_eps against the committed BENCH_sweep.json. The
    // spread notes carry the full per-repetition min/median/max so a
    // noisy box is visible in the record instead of masquerading as a
    // regression.
    let heap_eps = format!("{eps_heap:.0}");
    let wheel_eps = format!("{eps_wheel:.0}");
    let spread_of = |tp: &harness::Throughput| {
        format!(
            "best {:.3}M / median {:.3}M / worst {:.3}M events/s over {} reps ({:.0}% spread)",
            tp.best_eps() / 1e6,
            tp.median_eps() / 1e6,
            tp.worst_eps() / 1e6,
            tp.rep_wall_s.len(),
            100.0 * tp.spread(),
        )
    };
    let heap_spread = spread_of(&tp_heap);
    let wheel_spread = spread_of(&tp_wheel);
    let speedup = format!("{:.2}", eps_wheel / eps_heap.max(1.0));
    let k6_fp = format!("{:016x}", tp_wheel.fingerprint);
    let k6_p8_eps = format!("{eps_k6_p8:.0}");
    let k6_p8_spread = spread_of(&tp_wheel_p8);
    let k6_par_speedup = format!("{:.2}", eps_k6_p8 / eps_wheel.max(1.0));
    let k8_eps = format!("{eps_k8:.0}");
    let k8_p8_eps = format!("{eps_k8_p8:.0}");
    let k8_spread = spread_of(&tp_k8);
    let k8_p8_spread = spread_of(&tp_k8_p8);
    let k8_par_speedup = format!("{:.2}", eps_k8_p8 / eps_k8.max(1.0));
    let k8_fp = format!("{:016x}", tp_k8.fingerprint);
    rep.write_bench_json(
        &bench,
        "tcdsim sweep (victim grid)",
        &[
            ("fat_tree_k6_heap", heap_note.as_str()),
            ("fat_tree_k6_wheel", wheel_note.as_str()),
            ("fat_tree_k6_wheel_p8", k6_p8_note.as_str()),
            ("fat_tree_k6_heap_eps", heap_eps.as_str()),
            ("fat_tree_k6_wheel_eps", wheel_eps.as_str()),
            ("fat_tree_k6_wheel_p8_eps", k6_p8_eps.as_str()),
            ("fat_tree_k6_heap_spread", heap_spread.as_str()),
            ("fat_tree_k6_wheel_spread", wheel_spread.as_str()),
            ("fat_tree_k6_wheel_p8_spread", k6_p8_spread.as_str()),
            ("fat_tree_k6_speedup", speedup.as_str()),
            ("fat_tree_k6_par_speedup", k6_par_speedup.as_str()),
            ("fat_tree_k6_fingerprint", k6_fp.as_str()),
            ("fat_tree_k8_wheel", k8_note.as_str()),
            ("fat_tree_k8_wheel_p8", k8_p8_note.as_str()),
            ("fat_tree_k8_wheel_eps", k8_eps.as_str()),
            ("fat_tree_k8_wheel_p8_eps", k8_p8_eps.as_str()),
            ("fat_tree_k8_wheel_spread", k8_spread.as_str()),
            ("fat_tree_k8_wheel_p8_spread", k8_p8_spread.as_str()),
            ("fat_tree_k8_par_speedup", k8_par_speedup.as_str()),
            ("fat_tree_k8_fingerprint", k8_fp.as_str()),
        ],
    )
    .expect("write bench record");
    // Optionally extend the append-only perf trajectory. The wheel entry
    // carries a compact profile digest from one extra profiled run, so
    // the store records *where* the cycles went, not just how many.
    if let Some(hist) = &a.history {
        let mut prof_sim = scenarios::fat_tree_k6_bench(QueueKind::Wheel);
        prof_sim.enable_profiler(tcd_repro::obs::prof::ProfConfig::default());
        prof_sim.run();
        let digest = prof_sim.profile().map(|p| p.compact_json());
        let entries = [
            harness::HistoryEntry::from_throughput("fat_tree_k6_heap", &tp_heap, None),
            harness::HistoryEntry::from_throughput("fat_tree_k6_wheel", &tp_wheel, digest),
            harness::HistoryEntry::from_throughput("fat_tree_k6_wheel_p8", &tp_wheel_p8, None),
            harness::HistoryEntry::from_throughput("fat_tree_k8_wheel", &tp_k8, None),
            harness::HistoryEntry::from_throughput("fat_tree_k8_wheel_p8", &tp_k8_p8, None),
        ];
        harness::append_history(hist, &entries).expect("append perf history");
        println!("appended {} entries to {hist}", entries.len());
    }
    println!(
        "fingerprint {:016x} | {} events in {:.2} s ({:.0} events/s) | wrote {results} and {bench}",
        rep.merged_fingerprint(),
        rep.total_events(),
        rep.total_wall_s,
        rep.events_per_sec()
    );
}

/// `tcdsim trace <scenario>` / `tcdsim metrics <scenario>`: run a named
/// observation scenario and write the requested JSON document. Output is
/// structurally validated before anything touches the filesystem.
fn cmd_export(a: &Args, metrics: bool) {
    let known = || {
        eprintln!("known scenarios:");
        for (n, d) in obs_export::SCENARIOS {
            eprintln!("  {n:18} {d}");
        }
        for (n, d) in obs_export::FAULT_SCENARIOS {
            eprintln!("  {n:18} {d}");
        }
        exit(2)
    };
    let Some(name) = a.scenario.as_deref() else {
        eprintln!("{}: missing <scenario>", a.cmd);
        known()
    };
    let end = SimTime::from_ps((a.end_ms * 1e9) as u64);
    let sim = match obs_export::run_scenario(name, end) {
        Some(r) => r.sim,
        None => match obs_export::run_fault_scenario(name, end) {
            Some(sim) => sim,
            None => {
                eprintln!("{}: unknown scenario `{name}`", a.cmd);
                known()
            }
        },
    };
    let (doc, kind) = if metrics {
        let doc = obs_export::metrics_json(&sim);
        if let Err(e) = tcd_repro::obs::json::parse(&doc) {
            eprintln!("metrics: generated invalid JSON ({e}); not writing");
            exit(1);
        }
        (doc, "metrics")
    } else {
        let doc = obs_export::perfetto_trace_json(&sim);
        match tcd_repro::obs::perfetto::validate_chrome_trace(&doc) {
            Ok(n) => println!("trace: {n} Chrome-trace events"),
            Err(e) => {
                eprintln!("trace: generated invalid Chrome trace ({e}); not writing");
                exit(1);
            }
        }
        (doc, "trace")
    };
    let path = a
        .out
        .clone()
        .unwrap_or_else(|| format!("results/{kind}_{name}.json"));
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, &doc).expect("write output file");
    println!(
        "wrote {path} ({} bytes, {name} over {} ms, {} sim events)",
        doc.len(),
        a.end_ms,
        sim.trace.events
    );
}

/// `tcdsim perf`: self-profile the fat-tree k=6 bench and report where
/// the wall-clock cycles go (plus a validated wall-clock Perfetto track),
/// or — with `--history` — render the perf-trajectory store as a trend
/// report and optionally gate on it.
fn cmd_perf(a: &Args) {
    use tcd_repro::netsim::QueueKind;
    use tcd_repro::obs::prof::ProfConfig;

    if let Some(hist) = &a.history {
        let entries = harness::read_history(hist);
        if entries.is_empty() {
            eprintln!("perf: no history at {hist}");
            exit(i32::from(a.gate));
        }
        print!("{}", harness::history_report(&entries));
        if a.gate {
            // The newest entry per scenario is the run under test; every
            // earlier entry is baseline.
            let mut fresh: Vec<harness::HistoryEntry> = Vec::new();
            for e in &entries {
                match fresh.iter_mut().find(|f| f.scenario == e.scenario) {
                    Some(f) => *f = e.clone(),
                    None => fresh.push(e.clone()),
                }
            }
            let mut baseline = entries;
            for f in &fresh {
                if let Some(pos) = baseline.iter().rposition(|e| e.scenario == f.scenario) {
                    baseline.remove(pos);
                }
            }
            let failures = harness::history_gate(&baseline, &fresh, 0.9);
            if failures.is_empty() {
                println!("perf gate: ok ({} scenario(s))", fresh.len());
            } else {
                for f in &failures {
                    eprintln!("perf gate: {f}");
                }
                exit(1);
            }
        }
        return;
    }

    if a.partitions > 1 {
        eprintln!(
            "profiling fat-tree k=6 workload (wheel queue, {} partition workers)...",
            a.partitions
        );
    } else {
        eprintln!("profiling fat-tree k=6 workload (wheel queue)...");
    }
    let mut sim = scenarios::fat_tree_k6_bench_par(QueueKind::Wheel, a.partitions);
    sim.enable_profiler(ProfConfig::default());
    sim.run();
    let profile = sim.profile().expect("profiler was armed");
    if a.lint_json {
        print!("{}", profile.to_json());
    } else {
        print!("{}", profile.hot_report(a.top));
    }
    // The wall-clock Perfetto track alongside the sim-time tracks,
    // structurally validated before anything touches the filesystem.
    let doc = obs_export::perfetto_trace_json(&sim);
    match tcd_repro::obs::perfetto::validate_chrome_trace(&doc) {
        Ok(n) => {
            let path = a
                .out
                .clone()
                .unwrap_or_else(|| "results/perf_fat_tree_k6.json".to_string());
            if let Some(dir) = std::path::Path::new(&path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create output directory");
                }
            }
            std::fs::write(&path, &doc).expect("write trace");
            eprintln!("wrote {path} ({n} Chrome-trace events)");
        }
        Err(e) => {
            eprintln!("perf: generated invalid Chrome trace ({e}); not writing");
            exit(1);
        }
    }
}

fn cmd_lint(a: &Args) {
    use tcd_repro::lintspec;

    // Default (no flags): code lint + every committed scenario.
    let run_code = a.lint_code || a.lint_topos.is_empty();
    let topos: Vec<String> = if a.lint_topos.is_empty() && !a.lint_code {
        lintspec::COMMITTED.iter().map(|s| s.to_string()).collect()
    } else {
        a.lint_topos.clone()
    };
    let mut failed = false;

    let mut code_diags = Vec::new();
    let mut code_files = 0usize;
    let mut hot = Vec::new();
    if run_code {
        let cwd = std::env::current_dir().expect("current dir");
        let Some(root) = simlint::find_workspace_root(&cwd) else {
            eprintln!("lint: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
            exit(2);
        };
        let table = a.lint_spec_table.as_ref().map(std::path::Path::new);
        match simlint::lint_workspace_with_table(&root, table) {
            Ok((diags, files)) => {
                if !a.lint_json {
                    for d in &diags {
                        println!("{d}");
                    }
                    println!("code lint: {} finding(s) in {files} files", diags.len());
                }
                failed |= !diags.is_empty();
                code_diags = diags;
                code_files = files;
            }
            Err(e) => {
                eprintln!("lint: cannot scan workspace: {e}");
                exit(2);
            }
        }
        if a.lint_json {
            match simlint::workspace_hot_functions(&root) {
                Ok(h) => hot = h,
                Err(e) => {
                    eprintln!("lint: cannot scan workspace: {e}");
                    exit(2);
                }
            }
        }
    }

    let mut clean = Vec::new();
    let mut reports = Vec::new();
    for name in &topos {
        let Some(spec) = lintspec::build(name) else {
            eprintln!(
                "lint: unknown scenario `{name}` (known: {}, seeded-bad: {})",
                lintspec::COMMITTED.join(", "),
                lintspec::SEEDED_BAD.join(", ")
            );
            exit(2);
        };
        let rep = simlint::analyze(&spec);
        if !a.lint_json {
            if rep.diags.is_empty() {
                clean.push(name.as_str());
            } else {
                println!(
                    "{name}: {} channel(s), {} dependency edge(s)",
                    rep.channels, rep.dependencies
                );
                for d in &rep.diags {
                    println!("  {d}");
                }
            }
        }
        failed |= rep.has_errors();
        reports.push(rep);
    }
    if a.lint_json {
        print!(
            "{}",
            simlint::json_report(&code_diags, code_files, &hot, &reports)
        );
    } else if !topos.is_empty() {
        println!(
            "topology lint: {}/{} scenario(s) clean",
            clean.len(),
            topos.len()
        );
    }
    if failed {
        exit(1);
    }
}

fn main() {
    let a = parse();
    match a.cmd.as_str() {
        "observe" => cmd_observe(&a),
        "victim" => cmd_victim(&a),
        "fairness" => cmd_fairness(&a),
        "trees" => cmd_trees(&a),
        "sweep" => cmd_sweep(&a),
        "trace" => cmd_export(&a, false),
        "metrics" => cmd_export(&a, true),
        "perf" => cmd_perf(&a),
        "lint" => cmd_lint(&a),
        _ => usage(),
    }
}
