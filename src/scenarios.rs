//! Shared experiment scenarios — the paper's evaluation setups, built once
//! and reused by examples, integration tests and the per-figure binaries.
//!
//! * [`observation`] — the §3.1 single/multiple congestion point scenarios
//!   on the Figure-2 topology (also §5.1.2 with TCD);
//! * [`victim`] — the §5.1.3 head-of-line victim-flow scenario (Table 3,
//!   Fig. 15/18);
//! * [`testbed`] — the §5.1.1 compact testbed (Fig. 11);
//! * [`workload`] — the §5.2 fat-tree realistic-workload runs (Fig. 16/19)
//!   and the HPC MPI/I-O mix (Fig. 17);
//! * [`fairness`] — the §5.2.4 fairness scenario (Fig. 20).

use lossless_cc::{Dcqcn, DcqcnConfig, Hpcc, IbCc, IbCcConfig, Timely, TimelyConfig};
use lossless_flowctl::cbfc::CbfcConfig;
use lossless_flowctl::pfc::PfcConfig;
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::cchooks::{FixedRate, RateController};
use lossless_netsim::config::{DetectorKind, FeedbackMode, FlowControlMode, SimConfig};
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::Simulator;
use tcd_core::baseline::RedConfig;
use tcd_core::model::{cee_max_ton, ib_max_ton, RECOMMENDED_EPSILON};
use tcd_core::TcdConfig;

/// Which lossless network is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// Converged Enhanced Ethernet (PFC + ECN/DCQCN).
    Cee,
    /// InfiniBand (CBFC + FECN/IB CC).
    Ib,
}

impl Network {
    /// The routing discipline the paper uses on this network.
    pub fn routing(self) -> RouteSelect {
        match self {
            Network::Cee => RouteSelect::Ecmp,
            Network::Ib => RouteSelect::DModK,
        }
    }
}

/// Which congestion controller endpoints run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// DCQCN (CEE).
    Dcqcn,
    /// TIMELY (CEE, delay-based).
    Timely,
    /// IB CC (InfiniBand).
    IbCc,
    /// HPCC (CEE, INT-driven; §7 related-work baseline — no TCD variant).
    Hpcc,
}

/// A congestion-control choice: algorithm ± TCD awareness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cc {
    /// The algorithm.
    pub algo: CcAlgo,
    /// Whether endpoints are TCD-aware (hold on UE, aggressive on CE).
    pub tcd: bool,
}

impl Cc {
    /// Instantiate a controller for one flow.
    pub fn controller(&self) -> Box<dyn RateController> {
        match (self.algo, self.tcd) {
            (CcAlgo::Dcqcn, false) => Box::new(Dcqcn::new(DcqcnConfig::default())),
            (CcAlgo::Dcqcn, true) => Box::new(Dcqcn::new(DcqcnConfig::tcd())),
            (CcAlgo::Timely, false) => Box::new(Timely::new(TimelyConfig::default())),
            (CcAlgo::Timely, true) => Box::new(Timely::new(TimelyConfig::tcd())),
            (CcAlgo::IbCc, false) => Box::new(IbCc::new(IbCcConfig::default())),
            (CcAlgo::IbCc, true) => Box::new(IbCc::new(IbCcConfig::tcd())),
            (CcAlgo::Hpcc, _) => Box::new(Hpcc::standard()),
        }
    }

    /// The receiver feedback mode this controller needs.
    pub fn feedback(&self) -> FeedbackMode {
        match self.algo {
            CcAlgo::Dcqcn | CcAlgo::IbCc => FeedbackMode::CnpOnMarked {
                min_interval: SimDuration::from_us(50),
                notify_ue: self.tcd,
            },
            CcAlgo::Timely | CcAlgo::Hpcc => FeedbackMode::AckPerPacket,
        }
    }

    /// Display name ("dcqcn", "dcqcn+tcd", …).
    pub fn name(&self) -> String {
        let base = match self.algo {
            CcAlgo::Dcqcn => "dcqcn",
            CcAlgo::Timely => "timely",
            CcAlgo::IbCc => "ibcc",
            CcAlgo::Hpcc => "hpcc",
        };
        if self.tcd {
            format!("{base}+tcd")
        } else {
            base.to_string()
        }
    }
}

/// TCD detector configuration for a CEE network with the given link rate
/// and propagation delay (paper §4.3): `max(T_on)` from Eq. 3 with the
/// recommended ε, queue thresholds matching the ECN marking point
/// (K_max = 200 KB) and a 5 KB low watermark.
pub fn cee_tcd_config(rate: Rate, propagation: SimDuration, epsilon: f64) -> TcdConfig {
    TcdConfig::new(
        cee_max_ton(rate, 1000, propagation, epsilon),
        200 * 1024,
        5 * 1024,
    )
}

/// TCD detector configuration for an InfiniBand network (paper §4.4):
/// `max(T_on) = T_c`, queue thresholds matching the FECN threshold
/// (50 KB) and a 5 KB low watermark.
pub fn ib_tcd_config(cbfc: &CbfcConfig) -> TcdConfig {
    // T = max(T_on) = T_c is short in IB, so the ⑤ transition uses a
    // 3-period debounce against post-collapse drain waves (see
    // tcd_core::detector::TcdConfig::confirm_periods and DESIGN.md).
    TcdConfig::new(ib_max_ton(cbfc.update_period, 1.0), 50 * 1024, 5 * 1024).with_confirm(3)
}

/// Baseline (binary) detector per network: ECN-RED for CEE, FECN for IB.
pub fn baseline_detector(network: Network) -> DetectorKind {
    match network {
        Network::Cee => DetectorKind::EcnRed(RedConfig::dcqcn_40g()),
        Network::Ib => DetectorKind::IbFecn {
            threshold_bytes: 50 * 1024,
        },
    }
}

/// The paper's default SimConfig for a network at 40 Gbps with 4 µs links.
pub fn default_config(network: Network, use_tcd: bool, end: SimTime) -> SimConfig {
    let mut cfg = match network {
        Network::Cee => SimConfig::cee_baseline(end),
        Network::Ib => SimConfig::ib_baseline(end),
    };
    if use_tcd {
        cfg.detector = match network {
            Network::Cee => DetectorKind::TcdRed(
                cee_tcd_config(
                    Rate::from_gbps(40),
                    SimDuration::from_us(4),
                    RECOMMENDED_EPSILON,
                ),
                RedConfig::dcqcn_40g(),
            ),
            Network::Ib => {
                let FlowControlMode::Cbfc(c) = cfg.flow_control else {
                    unreachable!()
                };
                DetectorKind::TcdFecn(ib_tcd_config(&c), 50 * 1024)
            }
        };
    }
    cfg
}

/// The fat-tree k=6 run the engine's single-run throughput is quoted on:
/// the §5.2 realistic workload (Hadoop sizes, Poisson arrivals at 0.6
/// load, DCQCN+TCD, a pinch of partition-aggregate incast) with the full
/// flow schedule registered up front — so the event queue carries
/// hundreds of thousands of pending `FlowStart`s while near-term packet
/// events churn through it, exactly the large-pending-set regime that
/// separates the timing wheel from the binary heap. Returns the simulator *before*
/// `run()` so harness timing excludes topology/routing/workload
/// construction; the caller picks the event-queue core so heap and wheel
/// time head-to-head on identical schedules.
pub fn fat_tree_k6_bench(queue: lossless_netsim::QueueKind) -> Simulator {
    fat_tree_k6_bench_par(queue, 1)
}

/// [`fat_tree_k6_bench`] with an explicit intra-run partition worker
/// count: `1` pins the serial engine (ignoring `TCD_PARTITIONS`, so the
/// baseline number is a baseline no matter the environment), `n > 1`
/// requests the conservative-parallel executor. Same workload, same
/// schedule, same fingerprint at any worker count.
pub fn fat_tree_k6_bench_par(queue: lossless_netsim::QueueKind, partitions: usize) -> Simulator {
    let (sim, _ft, _flows) = workload::build(
        workload::Options {
            network: Network::Cee,
            cc: Cc {
                algo: CcAlgo::Dcqcn,
                tcd: true,
            },
            use_tcd: true,
            k: 6,
            workload: workload::Workload::Hadoop,
            load: 0.6,
            flows: 360_000,
            incast_fraction: 0.05,
            incast_fanin: 16,
            seed: 1,
            deadline: SimTime::from_ms(5),
        },
        |cfg| {
            cfg.queue = queue;
            cfg.partitions = partitions;
            // Benchmark the engine, not the instrumentation: recorder and
            // registry writes are identical per-event work on both cores
            // and only dilute the queue-cost comparison. Dynamics (and so
            // the run fingerprint) are unaffected by the obs level.
            cfg.obs.level = lossless_obs::ObsLevel::Off;
        },
    );
    sim
}

/// The fat-tree k=8 run multi-core scaling is quoted on: the same §5.2
/// realistic workload as [`fat_tree_k6_bench`] scaled up to 128 hosts —
/// 80 switches and enough per-pod locality that an 8-way pod-aware
/// partition keeps most traffic shard-local, which is exactly the regime
/// the conservative-parallel executor targets. `partitions = 1` pins the
/// serial engine; the fingerprint is identical at any worker count.
pub fn fat_tree_k8_bench(queue: lossless_netsim::QueueKind, partitions: usize) -> Simulator {
    let (sim, _ft, _flows) = workload::build(
        workload::Options {
            network: Network::Cee,
            cc: Cc {
                algo: CcAlgo::Dcqcn,
                tcd: true,
            },
            use_tcd: true,
            k: 8,
            workload: workload::Workload::Hadoop,
            load: 0.6,
            flows: 50_000,
            incast_fraction: 0.05,
            incast_fanin: 16,
            seed: 1,
            deadline: SimTime::from_ms(5),
        },
        |cfg| {
            cfg.queue = queue;
            cfg.partitions = partitions;
            // Engine-only timing, as in the k=6 bench.
            cfg.obs.level = lossless_obs::ObsLevel::Off;
        },
    );
    sim
}

pub mod observation {
    //! The §3.1 observation scenarios on the Figure-2 topology.

    use super::*;
    use lossless_netsim::packet::FlowId;
    use lossless_netsim::topology::{figure2, Figure2, Figure2Options, NodeId};
    use lossless_workloads::burst::rounds_for_duration;

    /// Options for an observation run.
    #[derive(Debug, Clone, Copy)]
    pub struct Options {
        /// The network (CEE or InfiniBand).
        pub network: Network,
        /// `false` = single congestion point (§3.1.2, F0/F2 at 5 Gbps);
        /// `true` = multiple congestion points (§3.1.3, F0/F2 at 25 Gbps).
        pub multi_cp: bool,
        /// Run TCD instead of the binary baseline detector.
        pub use_tcd: bool,
        /// Simulation end (paper plots ~3–5 ms).
        pub end: SimTime,
        /// Port-sample interval for the queue/rate traces.
        pub sample_every: SimDuration,
    }

    impl Default for Options {
        fn default() -> Self {
            Options {
                network: Network::Cee,
                multi_cp: false,
                use_tcd: false,
                end: SimTime::from_ms(6),
                sample_every: SimDuration::from_us(5),
            }
        }
    }

    /// Handles into a completed observation run.
    pub struct Run {
        /// The simulator, after `run()`.
        pub sim: Simulator,
        /// The Figure-2 topology handles.
        pub fig: Figure2,
        /// The long-lived congested flow S1 → R1.
        pub f1: FlowId,
        /// The constant-rate cross flow S0 → R0.
        pub f0: FlowId,
        /// The constant-rate cross flow S2 → R0.
        pub f2: FlowId,
        /// The burst flows (one per burster).
        pub bursts: Vec<FlowId>,
    }

    /// Build and run the scenario.
    pub fn run(opt: Options) -> Run {
        let fig = figure2(Figure2Options::default());
        let mut cfg = default_config(opt.network, opt.use_tcd, opt.end);

        // End-to-end CC for F1 (the only CC-regulated flow here).
        let cc = Cc {
            algo: match opt.network {
                Network::Cee => CcAlgo::Dcqcn,
                Network::Ib => CcAlgo::IbCc,
            },
            tcd: opt.use_tcd,
        };
        cfg.feedback = cc.feedback();
        cfg.trace_interval = Some(opt.sample_every);
        cfg.sample_ports = vec![
            (fig.p0.0, fig.p0.1, cfg.data_prio),
            (fig.p1.0, fig.p1.1, cfg.data_prio),
            (fig.p2.0, fig.p2.1, cfg.data_prio),
            (fig.p3.0, fig.p3.1, cfg.data_prio),
        ];

        let mut sim = Simulator::new(fig.topo.clone(), cfg, opt.network.routing());
        sim.record_marks(true);

        // F1: long-lived S1 -> R1, starts at line rate ("F1 achieves
        // 40 Gbps at the beginning").
        let f1 = sim.add_flow(fig.s1, fig.r1, 40_000_000, SimTime::ZERO, cc.controller());

        // Bursts: A0..A14 send back-to-back 64 KB bursts for ~3 ms; the
        // aggregate is sized so the bottleneck stays saturated that long.
        let rounds =
            rounds_for_duration(fig.bursters.len(), 64 * 1024, 40, SimDuration::from_ms(3));
        let burst_bytes = rounds as u64 * 64 * 1024;
        let bursts: Vec<FlowId> = fig
            .bursters
            .iter()
            .map(|&a| {
                sim.add_flow(
                    a,
                    fig.r1,
                    burst_bytes,
                    SimTime::ZERO,
                    Box::new(FixedRate::line_rate()),
                )
            })
            .collect();

        // F0/F2: constant-rate cross traffic to R0, started once F1 has
        // been throttled ("the rate of F1 has decreased below 15 Gbps when
        // F0 and F2 start").
        let cross = if opt.multi_cp {
            Rate::from_gbps(25)
        } else {
            Rate::from_gbps(5)
        };
        let cross_start = SimTime::from_us(200);
        let cross_bytes = cross.bytes_in(opt.end.saturating_since(cross_start)).max(1);
        let f0 = sim.add_flow(
            fig.s0,
            fig.r0,
            cross_bytes,
            cross_start,
            Box::new(FixedRate::new(cross)),
        );
        let f2 = sim.add_flow(
            fig.s2,
            fig.r0,
            cross_bytes,
            cross_start,
            Box::new(FixedRate::new(cross)),
        );

        sim.run();
        Run {
            sim,
            fig,
            f1,
            f0,
            f2,
            bursts,
        }
    }

    /// Convenience: the `(node, port)` of the paper's P0..P3 as sampled.
    pub fn p_ports(fig: &Figure2) -> [(NodeId, u16); 4] {
        [fig.p0, fig.p1, fig.p2, fig.p3]
    }
}

pub mod victim {
    //! The §5.1.3 head-of-line victim-flow scenario (Table 3) and its
    //! CC case-study variants (Fig. 15/18).

    use super::*;
    use lossless_netsim::packet::FlowId;
    use lossless_netsim::topology::{figure2, Figure2, Figure2Options};
    use lossless_workloads::burst::BurstPlan;
    use lossless_workloads::{hadoop, mpi_io, EmpiricalCdf, PoissonArrivals};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Options for a victim-flow run.
    #[derive(Debug, Clone, Copy)]
    pub struct Options {
        /// The network.
        pub network: Network,
        /// Detector: TCD or the baseline.
        pub use_tcd: bool,
        /// End-to-end congestion control for the generated flows; `None`
        /// leaves all generated flows uncontrolled (pure detection study,
        /// Table 3's setting uses the default CC of the network).
        pub cc: Option<Cc>,
        /// Burst size per burster per round (paper §3: 64 KB; Fig. 15b/18b
        /// sweeps this).
        pub burst_bytes: u64,
        /// Mean gap between burst rounds.
        pub burst_gap: SimDuration,
        /// Average load on the S0/S1 edge links from generated flows.
        pub load: f64,
        /// Fraction of IB messages that are I/O-sized (512 KB–4 MB); the
        /// rest follow the MPI CDF. Ignored in CEE mode.
        pub io_fraction: f64,
        /// Override for TCD's congestion degree ε (CEE only; Fig. 14's
        /// sensitivity sweep). `None` uses the recommended 0.05.
        pub epsilon: Option<f64>,
        /// Use the paper-literal trend classification (Fig. 14 ablation).
        pub paper_literal: bool,
        /// Run length.
        pub end: SimTime,
        /// Seed.
        pub seed: u64,
    }

    impl Default for Options {
        fn default() -> Self {
            Options {
                network: Network::Cee,
                use_tcd: false,
                cc: None,
                burst_bytes: 64 * 1024,
                burst_gap: SimDuration::from_us(400),
                load: 0.4,
                io_fraction: 0.1,
                epsilon: None,
                paper_literal: false,
                end: SimTime::from_ms(30),
                seed: 1,
            }
        }
    }

    /// A completed victim run.
    pub struct Run {
        /// The simulator, after `run()`.
        pub sim: Simulator,
        /// Topology handles.
        pub fig: Figure2,
        /// Flows from S0 → R0: potential victims.
        pub victims: Vec<FlowId>,
        /// Flows from S1 → R1: share the congested port P3.
        pub congested: Vec<FlowId>,
        /// Burst flows.
        pub bursts: Vec<FlowId>,
    }

    impl Run {
        /// Fraction of victim flows with at least one CE-marked delivered
        /// packet — the Table 3 metric ("if the number of packets marked
        /// with CE is non-zero, we consider the flow mistakenly detected
        /// as congested").
        pub fn victim_ce_fraction(&self) -> f64 {
            if self.victims.is_empty() {
                return 0.0;
            }
            let marked = self
                .victims
                .iter()
                .filter(|f| self.sim.trace.flows[f.0 as usize].delivered.ce > 0)
                .count();
            marked as f64 / self.victims.len() as f64
        }

        /// Fraction of victim flows with at least one UE-marked packet.
        pub fn victim_ue_fraction(&self) -> f64 {
            if self.victims.is_empty() {
                return 0.0;
            }
            let marked = self
                .victims
                .iter()
                .filter(|f| self.sim.trace.flows[f.0 as usize].delivered.ue > 0)
                .count();
            marked as f64 / self.victims.len() as f64
        }

        /// `(size, slowdown)` of completed victim flows, for FCT breakdowns.
        pub fn victim_slowdowns(&self, base_latency: SimDuration) -> Vec<(u64, f64)> {
            let line = Rate::from_gbps(20);
            self.victims
                .iter()
                .filter_map(|f| {
                    let rec = &self.sim.trace.flows[f.0 as usize];
                    let fct = rec.fct()?;
                    let ideal = lossless_stats::ideal_fct(rec.size, line, base_latency);
                    Some((rec.size, fct.as_secs_f64() / ideal.as_secs_f64()))
                })
                .collect()
        }

        /// Mean FCT (seconds) of completed victim flows.
        pub fn victim_mean_fct(&self) -> Option<f64> {
            let fcts: Vec<f64> = self
                .victims
                .iter()
                .filter_map(|f| self.sim.trace.flows[f.0 as usize].fct())
                .map(|d| d.as_secs_f64())
                .collect();
            lossless_stats::mean(&fcts)
        }
    }

    /// Build and run the scenario.
    pub fn run(opt: Options) -> Run {
        run_inner(opt, None)
    }

    /// Build and run with an explicit detector override (ablations).
    pub fn run_with_detector(opt: Options, detector: DetectorKind) -> Run {
        run_inner(opt, Some(detector))
    }

    fn run_inner(opt: Options, detector_override: Option<DetectorKind>) -> Run {
        // S0/S1 edge links at 20 Gbps, no flows from S2 (paper §5.1.3).
        let fig = figure2(Figure2Options {
            s_edge_rate: Some(Rate::from_gbps(20)),
            ..Default::default()
        });
        let mut cfg = default_config(opt.network, opt.use_tcd, opt.end);
        if let Some(det) = detector_override {
            cfg.detector = det;
        }
        if let (Some(eps), true, Network::Cee) = (opt.epsilon, opt.use_tcd, opt.network) {
            let mut tc = cee_tcd_config(Rate::from_gbps(40), SimDuration::from_us(4), eps);
            if opt.paper_literal {
                tc = tc.literal();
            }
            cfg.detector = DetectorKind::TcdRed(tc, RedConfig::dcqcn_40g());
        }
        let cc = opt.cc.unwrap_or(Cc {
            algo: match opt.network {
                Network::Cee => CcAlgo::Dcqcn,
                Network::Ib => CcAlgo::IbCc,
            },
            tcd: opt.use_tcd,
        });
        cfg.feedback = cc.feedback();
        cfg.seed = opt.seed;
        if cc.algo == CcAlgo::Hpcc {
            cfg.int_telemetry = true;
        }

        let mut sim = Simulator::new(fig.topo.clone(), cfg, opt.network.routing());
        sim.record_marks(true);
        let mut rng = StdRng::seed_from_u64(opt.seed);

        // Generated flows: S0 -> R0 (victims) and S1 -> R1 (congested).
        let cdf: EmpiricalCdf = match opt.network {
            Network::Cee => hadoop(),
            Network::Ib => mpi_io::mpi_message_cdf(),
        };
        let edge = Rate::from_gbps(20);
        // Offered-load accounting must use the *mixture* mean: IB draws
        // io_fraction of its messages from the I/O sizes (avg 1.875 MB).
        let mean = match opt.network {
            Network::Cee => cdf.mean(),
            Network::Ib => {
                let io_mean = mpi_io::io_message_sizes().iter().sum::<u64>() as f64 / 4.0;
                (1.0 - opt.io_fraction) * cdf.mean() + opt.io_fraction * io_mean
            }
        };
        let mut victims = Vec::new();
        let mut congested = Vec::new();
        for (src, dst, sink) in [
            (fig.s0, fig.r0, &mut victims),
            (fig.s1, fig.r1, &mut congested),
        ] {
            let mut arr = PoissonArrivals::for_load(opt.load, edge, mean, SimTime::ZERO);
            // Leave room at the end so most flows can finish.
            let gen_end = SimTime::from_ps(opt.end.as_ps() * 3 / 4);
            for t in arr.arrivals_until(gen_end, &mut rng) {
                let size = match opt.network {
                    Network::Cee => cdf.sample(&mut rng),
                    Network::Ib => {
                        // A fraction of IB messages are I/O-sized (§5.2.2 mix).
                        if rng.gen::<f64>() < opt.io_fraction {
                            mpi_io::sample_io_size(&mut rng)
                        } else {
                            cdf.sample(&mut rng)
                        }
                    }
                };
                sink.push(sim.add_flow(src, dst, size, t, cc.controller()));
            }
        }

        // Synchronized burst rounds A* -> R1.
        let plan = BurstPlan::rounds(
            fig.bursters.len(),
            opt.burst_bytes,
            opt.burst_gap,
            SimTime::ZERO,
            SimTime::from_ps(opt.end.as_ps() * 3 / 4),
            &mut rng,
        );
        let mut bursts = Vec::with_capacity(plan.len());
        for b in &plan.bursts {
            bursts.push(sim.add_flow(
                fig.bursters[b.sender],
                fig.r1,
                b.bytes,
                b.at,
                Box::new(FixedRate::line_rate()),
            ));
        }

        sim.run();
        Run {
            sim,
            fig,
            victims,
            congested,
            bursts,
        }
    }
}

pub mod testbed {
    //! The §5.1.1 DPDK-testbed scenario (Fig. 11), on the compact topology
    //! at 10 Gbps.

    use super::*;
    use lossless_netsim::packet::FlowId;
    use lossless_netsim::topology::{testbed_compact, TestbedCompact};

    /// A completed testbed run.
    pub struct Run {
        /// The simulator, after `run()`.
        pub sim: Simulator,
        /// Topology handles.
        pub tb: TestbedCompact,
        /// F0: S0 → R0 at 1 Gbps (the victim under observation).
        pub f0: FlowId,
        /// F1: S1 → R1 at 8 Gbps (passes the congested port).
        pub f1: FlowId,
        /// A0 → R1 at line rate (creates the congestion).
        pub a0: FlowId,
        /// When A0 starts / stops sending.
        pub burst_window: (SimTime, SimTime),
    }

    impl Run {
        /// F0's UE-marked delivery fraction within `[t0, t1)` — the
        /// Fig. 11 series, binned by the caller.
        pub fn f0_fractions_in(&self, t0: SimTime, t1: SimTime) -> (f64, f64) {
            let mut pkts = 0u64;
            let mut ue = 0u64;
            let mut ce = 0u64;
            for d in &self.sim.trace.deliveries {
                if d.flow == self.f0 && d.t >= t0 && d.t < t1 {
                    pkts += 1;
                    if d.code.is_ue() {
                        ue += 1;
                    }
                    if d.code.is_ce() {
                        ce += 1;
                    }
                }
            }
            if pkts == 0 {
                (0.0, 0.0)
            } else {
                (ue as f64 / pkts as f64, ce as f64 / pkts as f64)
            }
        }
    }

    /// Build and run the testbed scenario. `network` selects PFC (with the
    /// testbed's 800/770 KB thresholds and ε = 0.04) or CBFC (800 KB
    /// buffer, `T_c` = 60 µs).
    pub fn run(network: Network, end: SimTime) -> Run {
        let rate = Rate::from_gbps(10);
        let delay = SimDuration::from_us(1);
        let tb = testbed_compact(rate, delay);

        let mut cfg = match network {
            Network::Cee => {
                let mut c = SimConfig::cee_baseline(end);
                c.flow_control = FlowControlMode::Pfc(PfcConfig::paper_testbed());
                c.detector =
                    DetectorKind::TcdRed(cee_tcd_config(rate, delay, 0.04), RedConfig::dcqcn_40g());
                c
            }
            Network::Ib => {
                let mut c = SimConfig::ib_baseline(end);
                let cb = CbfcConfig::paper_testbed();
                c.flow_control = FlowControlMode::Cbfc(cb);
                c.detector = DetectorKind::TcdFecn(ib_tcd_config(&cb), 50 * 1024);
                c
            }
        };
        cfg.feedback = FeedbackMode::None; // fixed-rate flows; marking only
        let mut sim = Simulator::new(tb.topo.clone(), cfg, network.routing());
        sim.record_deliveries(true);

        let burst_start = SimTime::from_ps(end.as_ps() / 4);
        let burst_stop = SimTime::from_ps(end.as_ps() * 3 / 5);

        let f0_rate = Rate::from_gbps(1);
        let f1_rate = Rate::from_gbps(8);
        let f0 = sim.add_flow(
            tb.s0,
            tb.r0,
            f0_rate.bytes_in(end.saturating_since(SimTime::ZERO)),
            SimTime::ZERO,
            Box::new(FixedRate::new(f0_rate)),
        );
        let f1 = sim.add_flow(
            tb.s1,
            tb.r1,
            f1_rate.bytes_in(end.saturating_since(SimTime::ZERO)),
            SimTime::ZERO,
            Box::new(FixedRate::new(f1_rate)),
        );
        let a0 = sim.add_flow(
            tb.a0,
            tb.r1,
            rate.bytes_in(burst_stop.saturating_since(burst_start)),
            burst_start,
            Box::new(FixedRate::line_rate()),
        );

        sim.run();
        Run {
            sim,
            tb,
            f0,
            f1,
            a0,
            burst_window: (burst_start, burst_stop),
        }
    }
}

pub mod workload {
    //! The §5.2 realistic-workload runs: Hadoop/WebSearch on a fat-tree
    //! (Fig. 16/19) and the HPC MPI + I/O mix (Fig. 17).

    use super::*;
    use lossless_netsim::packet::FlowId;
    use lossless_netsim::topology::{fat_tree, FatTree};
    use lossless_stats::{ideal_fct, SizeBuckets, SlowdownSummary};
    use lossless_workloads::mpi_io::{assign_roles, sample_io_size, HpcRole};
    use lossless_workloads::{hadoop, mpi_io, websearch, EmpiricalCdf, PoissonArrivals};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Which flow-size workload to generate.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Workload {
        /// Facebook Hadoop (90% < 120 KB).
        Hadoop,
        /// DCTCP WebSearch (90% < 5 MB).
        WebSearch,
    }

    impl Workload {
        /// The size CDF.
        pub fn cdf(self) -> EmpiricalCdf {
            match self {
                Workload::Hadoop => hadoop(),
                Workload::WebSearch => websearch(),
            }
        }

        /// Size buckets for the breakdown tables.
        pub fn buckets(self) -> SizeBuckets {
            match self {
                Workload::Hadoop => SizeBuckets::hadoop_buckets(),
                Workload::WebSearch => SizeBuckets::websearch_buckets(),
            }
        }
    }

    /// Options for a fat-tree workload run.
    #[derive(Debug, Clone, Copy)]
    pub struct Options {
        /// The network and CC.
        pub network: Network,
        /// CC choice.
        pub cc: Cc,
        /// Use the TCD detector (usually `cc.tcd`).
        pub use_tcd: bool,
        /// Fat-tree arity (paper: 10 for CEE, 16 for IB).
        pub k: usize,
        /// Workload.
        pub workload: Workload,
        /// Target average edge-link load (paper: 0.6).
        pub load: f64,
        /// Total flows to generate (paper: 40 000; scale down for CI).
        pub flows: usize,
        /// Fraction of the flow budget spent on synchronized incast jobs
        /// (partition-aggregate style: `incast_fanin` senders send 64 KB
        /// each to one receiver simultaneously). 0 reproduces the paper's
        /// plain workload; a small fraction reproduces the pause-heavy
        /// regime of production fabrics (supplementary analysis).
        pub incast_fraction: f64,
        /// Fan-in of each incast job.
        pub incast_fanin: usize,
        /// Seed.
        pub seed: u64,
        /// Hard deadline.
        pub deadline: SimTime,
    }

    /// A completed workload run with slowdown accounting.
    pub struct Run {
        /// The simulator, after the run.
        pub sim: Simulator,
        /// The fat-tree.
        pub ft: FatTree,
        /// All generated flows.
        pub flows: Vec<FlowId>,
        /// `(size, slowdown)` for completed flows.
        pub slowdowns: Vec<(u64, f64)>,
        /// Fraction of flows that completed before the deadline.
        pub completion_rate: f64,
    }

    impl Run {
        /// Overall summary.
        pub fn summary(&self) -> Option<SlowdownSummary> {
            let s: Vec<f64> = self.slowdowns.iter().map(|&(_, x)| x).collect();
            SlowdownSummary::of(&s)
        }

        /// Per-bucket summaries.
        pub fn bucket_summaries(&self, buckets: &SizeBuckets) -> Vec<Option<SlowdownSummary>> {
            buckets
                .group(&self.slowdowns)
                .iter()
                .map(|g| SlowdownSummary::of(g))
                .collect()
        }
    }

    /// Build a fat-tree workload experiment without running it: the
    /// simulator comes back with every flow registered (pending
    /// `FlowStart`s in the event queue) so callers can time `run()` in
    /// isolation or on an explicit event-queue core.
    pub fn build(
        opt: Options,
        tune: impl FnOnce(&mut lossless_netsim::SimConfig),
    ) -> (Simulator, FatTree, Vec<FlowId>) {
        let rate = Rate::from_gbps(40);
        let delay = SimDuration::from_us(4);
        let ft = fat_tree(opt.k, rate, delay);
        let mut cfg = default_config(opt.network, opt.use_tcd, opt.deadline);
        cfg.feedback = opt.cc.feedback();
        cfg.seed = opt.seed;
        tune(&mut cfg);
        let mut sim = Simulator::new(ft.topo.clone(), cfg, opt.network.routing());
        let mut rng = StdRng::seed_from_u64(opt.seed);

        let cdf = opt.workload.cdf();
        let mean = cdf.mean();
        let n_hosts = ft.hosts.len();
        // Per-host Poisson arrivals at the target load; round-robin over
        // hosts until the flow budget is spent.
        let mut arrivals: Vec<PoissonArrivals> = (0..n_hosts)
            .map(|_| PoissonArrivals::for_load(opt.load, rate, mean, SimTime::ZERO))
            .collect();
        let mut flows = Vec::with_capacity(opt.flows);
        // (time, src host index or None for incast-job placeholder, size)
        let mut specs: Vec<(SimTime, usize, u64, bool)> = Vec::with_capacity(opt.flows);
        let mut budget = opt.flows;
        let mut i = 0usize;
        while budget > 0 {
            let h = i % n_hosts;
            i += 1;
            let t = arrivals[h].next_arrival(&mut rng);
            if rng.gen::<f64>() < opt.incast_fraction && budget >= opt.incast_fanin {
                specs.push((t, h, 0, true));
                budget -= opt.incast_fanin;
            } else {
                let size = cdf.sample(&mut rng);
                specs.push((t, h, size, false));
                budget -= 1;
            }
        }
        // Flow ids must be assigned in deterministic order.
        specs.sort_by_key(|&(t, h, _, _)| (t, h));
        for (t, h, size, incast) in specs {
            if incast {
                // Partition-aggregate response: fan-in × 64 KB to one
                // receiver, synchronized (each smaller than the BDP, so
                // uncontrollable by end-to-end CC — the paper's §3 burst).
                let dst = ft.hosts[h];
                let mut senders = Vec::with_capacity(opt.incast_fanin);
                while senders.len() < opt.incast_fanin {
                    let s = ft.hosts[rng.gen_range(0..n_hosts)];
                    if s != dst && !senders.contains(&s) {
                        senders.push(s);
                    }
                }
                for s in senders {
                    flows.push(sim.add_flow(s, dst, 64 * 1024, t, opt.cc.controller()));
                }
            } else {
                let src = ft.hosts[h];
                let dst = loop {
                    let d = ft.hosts[rng.gen_range(0..n_hosts)];
                    if d != src {
                        break d;
                    }
                };
                flows.push(sim.add_flow(src, dst, size, t, opt.cc.controller()));
            }
        }
        (sim, ft, flows)
    }

    /// Build and run a fat-tree workload experiment.
    pub fn run(opt: Options) -> Run {
        let (mut sim, ft, flows) = build(opt, |_| {});
        sim.run_until_all_complete();
        finish(sim, ft, flows, Rate::from_gbps(40), SimDuration::from_us(4))
    }

    /// Options for the HPC MPI + I/O run (Fig. 17).
    #[derive(Debug, Clone, Copy)]
    pub struct HpcOptions {
        /// CC choice (IB CC ± TCD).
        pub cc: Cc,
        /// Use the TCD detector.
        pub use_tcd: bool,
        /// Fat-tree arity (paper: 16).
        pub k: usize,
        /// Total messages (paper: 80 000; scale down for CI).
        pub messages: usize,
        /// Fraction of messages that are I/O (paper: 10%).
        pub io_fraction: f64,
        /// Seed.
        pub seed: u64,
        /// Hard deadline.
        pub deadline: SimTime,
    }

    /// Build and run the HPC experiment on InfiniBand with D-mod-k routing.
    pub fn run_hpc(opt: HpcOptions) -> Run {
        let rate = Rate::from_gbps(40);
        let delay = SimDuration::from_us(4);
        let ft = fat_tree(opt.k, rate, delay);
        let mut cfg = default_config(Network::Ib, opt.use_tcd, opt.deadline);
        cfg.feedback = opt.cc.feedback();
        cfg.seed = opt.seed;
        let mut sim = Simulator::new(ft.topo.clone(), cfg, RouteSelect::DModK);
        let mut rng = StdRng::seed_from_u64(opt.seed);

        let hosts_per_rack = opt.k / 2;
        let roles = assign_roles(
            ft.hosts.len(),
            hosts_per_rack,
            (opt.k / 4).max(1),
            0.25,
            &mut rng,
        );
        let io_servers: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == HpcRole::IoServer)
            .map(|(i, _)| i)
            .collect();
        let io_clients: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == HpcRole::IoClient)
            .map(|(i, _)| i)
            .collect();
        let mpi_nodes: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == HpcRole::Mpi)
            .map(|(i, _)| i)
            .collect();
        let mpi_cdf = mpi_io::mpi_message_cdf();

        // Aggregate Poisson arrival stream at moderate load.
        let mean_size = 0.9 * mpi_cdf.mean() + 0.1 * 1_900_000.0;
        let mut arr = PoissonArrivals::for_load(
            0.5,
            Rate::from_bps(rate.as_bps() * ft.hosts.len() as u64 / 2),
            mean_size,
            SimTime::ZERO,
        );
        let mut flows = Vec::with_capacity(opt.messages);
        for _ in 0..opt.messages {
            let t = arr.next_arrival(&mut rng);
            let io = rng.gen::<f64>() < opt.io_fraction && !io_clients.is_empty();
            let (src, dst, size) = if io {
                let s = io_clients[rng.gen_range(0..io_clients.len())];
                let d = io_servers[rng.gen_range(0..io_servers.len())];
                (s, d, sample_io_size(&mut rng))
            } else {
                let s = mpi_nodes[rng.gen_range(0..mpi_nodes.len())];
                let d = loop {
                    let d = mpi_nodes[rng.gen_range(0..mpi_nodes.len())];
                    if d != s {
                        break d;
                    }
                };
                (s, d, mpi_cdf.sample(&mut rng))
            };
            flows.push(sim.add_flow(ft.hosts[src], ft.hosts[dst], size, t, opt.cc.controller()));
        }

        sim.run_until_all_complete();
        finish(sim, ft, flows, rate, delay)
    }

    fn finish(
        sim: Simulator,
        ft: FatTree,
        flows: Vec<FlowId>,
        rate: Rate,
        delay: SimDuration,
    ) -> Run {
        let routing = sim.routing();
        let topo = sim.topology();
        let mut slowdowns = Vec::new();
        let mut completed = 0usize;
        for &f in &flows {
            let rec = &sim.trace.flows[f.0 as usize];
            let Some(fct) = rec.fct() else { continue };
            completed += 1;
            // Idle-network baseline: serialization at line rate plus the
            // path's propagation and per-hop store-and-forward latency.
            let hops = routing.path(topo, rec.src, rec.dst, f).len() as u64;
            let base = delay * hops + rate.serialize_time(1000) * hops;
            let ideal = ideal_fct(rec.size, rate, base);
            slowdowns.push((rec.size, fct.as_secs_f64() / ideal.as_secs_f64()));
        }
        let completion_rate = completed as f64 / flows.len().max(1) as f64;
        Run {
            sim,
            ft,
            flows,
            slowdowns,
            completion_rate,
        }
    }
}

pub mod fairness {
    //! The §5.2.4 fairness scenario (Fig. 20): four long flows through the
    //! undetermined port P2 hold their rate under UE, then converge to the
    //! fair share once P2 becomes a congestion port.

    use super::*;
    use lossless_netsim::packet::FlowId;
    use lossless_netsim::topology::{figure2, Figure2, Figure2Options};
    use lossless_workloads::burst::rounds_for_duration;

    /// A completed fairness run.
    pub struct Run {
        /// The simulator, after the run.
        pub sim: Simulator,
        /// Topology handles.
        pub fig: Figure2,
        /// The four B-host flows (B0..B3 → R0).
        pub b_flows: Vec<FlowId>,
        /// F1 (S1 → R1).
        pub f1: FlowId,
    }

    /// Build and run the fairness scenario with the given CC.
    pub fn run(cc: Cc, end: SimTime) -> Run {
        let fig = figure2(Figure2Options {
            with_b_hosts: true,
            ..Default::default()
        });
        let network = match cc.algo {
            CcAlgo::IbCc => Network::Ib,
            _ => Network::Cee,
        };
        let mut cfg = default_config(network, cc.tcd, end);
        cfg.feedback = cc.feedback();
        cfg.trace_interval = Some(SimDuration::from_us(20));
        // Sample the B hosts' NICs: each carries exactly one flow, so the
        // NIC rate is the flow throughput.
        cfg.sample_ports = fig.b_hosts.iter().map(|&h| (h, 0, cfg.data_prio)).collect();

        let mut sim = Simulator::new(fig.topo.clone(), cfg, network.routing());

        let f1 = sim.add_flow(fig.s1, fig.r1, 40_000_000, SimTime::ZERO, cc.controller());
        let rounds =
            rounds_for_duration(fig.bursters.len(), 64 * 1024, 40, SimDuration::from_ms(3));
        for &a in &fig.bursters {
            sim.add_flow(
                a,
                fig.r1,
                rounds as u64 * 64 * 1024,
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            );
        }
        let b_flows: Vec<FlowId> = fig
            .b_hosts
            .iter()
            .map(|&b| sim.add_flow(b, fig.r0, 60_000_000, SimTime::ZERO, cc.controller()))
            .collect();

        sim.run();
        Run {
            sim,
            fig,
            b_flows,
            f1,
        }
    }
}

pub mod fault {
    //! Fault-injection and runtime-deadlock scenarios (DCFIT-style): link
    //! flaps and degradations under lossless incast, plus a constructed
    //! family of CDC-cyclic rings that drive PFC into genuine runtime
    //! deadlock — the dynamic counterpart of `tcdsim lint`'s static
    //! cycle analysis, detected at runtime by the auditor's
    //! stalled-progress watchdog.

    use super::*;
    use lossless_netsim::topology::{dumbbell, fat_tree, NodeId, Topology};

    /// A fat-tree k=4 incast with the victim edge switch's fabric
    /// uplinks flapping in the middle of it — every cross-edge flow is
    /// forced to sit out the dark window behind PFC, so recovery is
    /// genuinely exercised (ECMP cannot route around the fault).
    /// Lossless end to end: the flap must cost zero packets. Returns the
    /// simulator *before* `run()` plus the `(down, up)` window.
    pub fn flap_incast(end: SimTime) -> (Simulator, (SimTime, SimTime)) {
        let ft = fat_tree(4, Rate::from_gbps(40), SimDuration::from_us(4));
        let mut cfg = default_config(Network::Cee, true, end);
        let down = SimTime::from_ps(end.as_ps() / 8);
        let up = SimTime::from_ps(end.as_ps() / 3);
        let edge = ft.edges[0];
        for &agg in &ft.aggs[..2] {
            let port = ft
                .topo
                .port_towards(edge, agg)
                .expect("edge0 uplinks to its pod aggs");
            cfg.fault_plan.flap(edge, port, down, up);
        }
        // Sample the TCD state on the victim access port and the flapped
        // uplinks: the exported timeline shows congestion forming at the
        // onset and clearing after recovery.
        cfg.trace_interval = Some(SimDuration::from_us(50));
        let victim_port = ft
            .topo
            .port_towards(edge, ft.hosts[0])
            .expect("edge0 connects to its first host");
        cfg.sample_ports = vec![(edge, victim_port, cfg.data_prio)];
        for &agg in &ft.aggs[..2] {
            let p = ft.topo.port_towards(edge, agg).expect("edge0 uplink");
            cfg.sample_ports.push((edge, p, cfg.data_prio));
        }
        let mut sim = Simulator::new(ft.topo.clone(), cfg, Network::Cee.routing());
        let victim = ft.hosts[0];
        for (i, &src) in ft.hosts.iter().enumerate().skip(1).take(6) {
            sim.add_flow(
                src,
                victim,
                500_000,
                SimTime::from_us(i as u64),
                Box::new(FixedRate::line_rate()),
            );
        }
        (sim, (down, up))
    }

    /// A dumbbell whose receiver-side link degrades to 10 Gbps for a
    /// window mid-transfer and then restores: PFC pauses the sender at
    /// the onset, TCD walks through its congestion states, and the flow
    /// still completes loss-free. Returns the simulator *before* `run()`.
    pub fn degrade_recovery(end: SimTime) -> Simulator {
        let db = dumbbell(Rate::from_gbps(40), SimDuration::from_us(4));
        let mut cfg = default_config(Network::Cee, true, end);
        let port = db
            .topo
            .port_towards(db.sw, db.h1)
            .expect("switch connects to h1");
        cfg.fault_plan.degrade(
            db.sw,
            port,
            Rate::from_gbps(10),
            SimTime::from_ps(end.as_ps() / 8),
            SimTime::from_ps(end.as_ps() / 4),
        );
        // The degraded egress is where TCD sees congestion come and go.
        cfg.trace_interval = Some(SimDuration::from_us(20));
        cfg.sample_ports = vec![(db.sw, port, cfg.data_prio)];
        let mut sim = Simulator::new(db.topo.clone(), cfg, Network::Cee.routing());
        sim.add_flow(
            db.h0,
            db.h1,
            4_000_000,
            SimTime::ZERO,
            Box::new(FixedRate::line_rate()),
        );
        sim
    }

    /// A constructed runtime-deadlock scenario, ready to run.
    pub struct DeadlockRing {
        /// The simulator, *before* `run()` (so callers can tighten the
        /// auditor's checkpoint cadence first).
        pub sim: Simulator,
        /// The ring switches `s0..sn`, in ring order.
        pub switches: Vec<NodeId>,
        /// `ring_ports[i]` is the port of `switches[i]` towards
        /// `switches[(i+1) % n]` — together with `switches` these are
        /// exactly the channels of the CDC cycle the static analyzer
        /// flags, and the cycle the runtime watchdog must report.
        pub ring_ports: Vec<u16>,
        /// One host per switch.
        pub hosts: Vec<NodeId>,
    }

    /// Build an `n`-switch ring (one host each) and drive it toward PFC
    /// deadlock: route overrides — installed atomically through the
    /// fault plan's route-change machinery at t = 0 — send every host
    /// two hops clockwise, so each ring link carries two line-rate flows
    /// and every inter-switch channel comes to depend on the next one
    /// around the ring. With `revert_at` set, the routes swap back to
    /// the (acyclic) shortest paths at that time; reverting before the
    /// pause cycle closes lets the fabric drain and TCD's states recover
    /// instead of wedging.
    ///
    /// A 2 µs trace tick over every ring egress keeps the event stream
    /// alive after a wedge (so the auditor's watchdog still runs) and
    /// records the TCD ternary-state timeline during formation and
    /// recovery.
    pub fn deadlock_ring(n: usize, end: SimTime, revert_at: Option<SimTime>) -> DeadlockRing {
        assert!(
            n >= 3,
            "a channel-dependency cycle needs at least 3 switches"
        );
        let (r, d) = (Rate::from_gbps(40), SimDuration::from_us(4));
        let mut b = Topology::builder();
        let s: Vec<NodeId> = (0..n).map(|i| b.switch(format!("s{i}"))).collect();
        let h: Vec<NodeId> = (0..n).map(|i| b.host(format!("h{i}"))).collect();
        for i in 0..n {
            b.link(h[i], s[i], r, d);
            b.link(s[i], s[(i + 1) % n], r, d);
        }
        let topo = b.build();

        let mut cfg = default_config(Network::Cee, true, end);
        cfg.feedback = FeedbackMode::None; // fixed-rate senders; marking only
        let paths: Vec<Vec<NodeId>> = (0..n)
            .map(|i| vec![h[i], s[i], s[(i + 1) % n], s[(i + 2) % n], h[(i + 2) % n]])
            .collect();
        cfg.fault_plan.route_sets.push(paths);
        cfg.fault_plan.route_change(SimTime::ZERO, Some(0));
        if let Some(t) = revert_at {
            cfg.fault_plan.route_change(t, None);
        }
        let ring_ports: Vec<u16> = (0..n)
            .map(|i| topo.port_towards(s[i], s[(i + 1) % n]).expect("ring link"))
            .collect();
        cfg.trace_interval = Some(SimDuration::from_us(2));
        cfg.sample_ports = (0..n)
            .map(|i| (s[i], ring_ports[i], cfg.data_prio))
            .collect();

        let mut sim = Simulator::new(topo, cfg, RouteSelect::Ecmp);
        for i in 0..n {
            sim.add_flow(
                h[i],
                h[(i + 2) % n],
                r.bytes_in(end.saturating_since(SimTime::ZERO)),
                SimTime::ZERO,
                Box::new(FixedRate::line_rate()),
            );
        }
        DeadlockRing {
            sim,
            switches: s,
            ring_ports,
            hosts: h,
        }
    }
}
