//! Plain-text reporting helpers: aligned tables and timeseries printing
//! shared by the experiment binaries.

use lossless_flowctl::SimTime;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for i in 0..ncols {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                s.push_str(&cells[i]);
                s.push_str(&" ".repeat(pad));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a time in milliseconds.
pub fn ms(t: SimTime) -> String {
    format!("{:.3}", t.as_ms_f64())
}

/// Print a standard experiment header.
pub fn header(id: &str, title: &str) {
    println!("== {id}: {title} ==");
}

/// Dump a run's sampled port series to CSV (one row per sample).
pub fn write_port_samples_csv(
    sim: &lossless_netsim::Simulator,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    lossless_stats::export::write_csv(
        path,
        &[
            "t_us",
            "node",
            "port",
            "prio",
            "queue_bytes",
            "tx_bytes",
            "state",
            "paused",
        ],
        sim.trace.port_samples.iter().map(|s| {
            vec![
                format!("{:.3}", s.t.as_us_f64()),
                s.node.0.to_string(),
                s.port.to_string(),
                s.prio.to_string(),
                s.queue_bytes.to_string(),
                s.tx_bytes.to_string(),
                s.state.symbol().to_string(),
                (s.paused as u8).to_string(),
            ]
        }),
    )
}

/// Dump per-flow outcomes (size, FCT, marks) to CSV.
pub fn write_flows_csv(
    sim: &lossless_netsim::Simulator,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    lossless_stats::export::write_csv(
        path,
        &[
            "flow", "src", "dst", "size", "start_us", "fct_us", "pkts", "ce", "ue",
        ],
        sim.trace.flows.iter().map(|f| {
            vec![
                f.flow.0.to_string(),
                f.src.0.to_string(),
                f.dst.0.to_string(),
                f.size.to_string(),
                format!("{:.3}", f.start.as_us_f64()),
                f.fct()
                    .map(|d| format!("{:.3}", d.as_us_f64()))
                    .unwrap_or_default(),
                f.delivered.pkts.to_string(),
                f.delivered.ce.to_string(),
                f.delivered.ue.to_string(),
            ]
        }),
    )
}

/// Minimal CLI parsing for the experiment binaries: supports
/// `--scale <f64>`, `--seed <u64>`, `--threads <usize>` and `--full`
/// (scale = 1.0).
#[derive(Debug, Clone, Copy)]
pub struct ExpArgs {
    /// Work scale factor relative to the paper's full setup (default 0.1).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for sweep-style experiments (`--threads`, else
    /// `TCD_THREADS`, else the machine's parallelism). Results are
    /// bit-identical at any value; only wall time changes.
    pub threads: usize,
}

impl ExpArgs {
    /// Parse from `std::env::args`, with a default scale.
    pub fn parse(default_scale: f64) -> ExpArgs {
        let mut scale = default_scale;
        let mut seed = 1u64;
        let mut threads = crate::harness::default_threads();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    scale = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a number"));
                    i += 2;
                }
                "--seed" => {
                    seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                    i += 2;
                }
                "--threads" => {
                    threads = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| panic!("--threads needs a positive integer"));
                    i += 2;
                }
                "--full" => {
                    scale = 1.0;
                    i += 1;
                }
                other => panic!(
                    "unknown argument: {other} (supported: --scale F, --seed N, --threads N, --full)"
                ),
            }
        }
        assert!(scale > 0.0, "scale must be positive");
        ExpArgs {
            scale,
            seed,
            threads,
        }
    }

    /// Scale an integer quantity, keeping at least `min`.
    pub fn scaled(&self, full: usize, min: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col - 1), Some(' '));
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // banker's-free truncating format
        assert_eq!(pct(0.266), "26.6%");
        assert_eq!(ms(SimTime::from_us(1500)), "1.500");
    }

    #[test]
    fn scaled_respects_minimum() {
        let a = ExpArgs {
            scale: 0.01,
            seed: 1,
            threads: 1,
        };
        assert_eq!(a.scaled(40_000, 100), 400);
        assert_eq!(a.scaled(50, 100), 100);
    }
}
