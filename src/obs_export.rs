//! Observability exporters: Chrome/Perfetto trace JSON and the
//! self-describing metrics dump for a finished simulator run.
//!
//! The trace maps simulator concepts onto the Chrome-trace process/thread
//! hierarchy: one *process* per simulated node, and per sampled
//! `(port, prio)` a queue-depth counter track, a ternary-state slice
//! track, a paused slice track, and a mark-instant track. The resulting
//! `trace.json` opens directly in `chrome://tracing` or
//! [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! Everything here is a pure read of the [`Simulator`]'s trace and
//! registry — exporting never perturbs a run, so fingerprints are
//! unaffected by whether a trace was written.
//!
//! Profiled runs (`TCD_PROF=1` or `Simulator::enable_profiler`) get one
//! extra pseudo-process, [`WALL_PROFILE_PID`]: the self-profiler's
//! timeline as counter tracks — wall-clock events/s, event-queue
//! occupancy and timing-wheel overflow, packet-pool hit rate — keyed at
//! *simulated* time so wall-clock throughput dips line up against the
//! sim-time congestion tracks above them.

use lossless_netsim::trace::PortSample;
use lossless_netsim::Simulator;
use lossless_obs::perfetto::TraceBuilder;
use std::collections::BTreeMap;
use tcd_core::TernaryState;

/// Track ids within a node's process: per sampled `(port, prio)` the
/// state track sits at `port*16 + (prio%8)*2 + 1`, the paused track one
/// above it, and the per-port mark track at `port*16 + 15`. Priorities
/// collide only above 7, far past the simulated priority counts.
fn state_tid(port: u16, prio: u8) -> u32 {
    u32::from(port) * 16 + u32::from(prio % 8) * 2 + 1
}

fn paused_tid(port: u16, prio: u8) -> u32 {
    state_tid(port, prio) + 1
}

fn mark_tid(port: u16) -> u32 {
    u32::from(port) * 16 + 15
}

fn state_name(s: TernaryState) -> &'static str {
    match s.symbol() {
        '1' => "congestion (1)",
        '/' => "undetermined (/)",
        _ => "non-congestion (0)",
    }
}

/// Process id of the wall-clock profile pseudo-process in exported
/// traces — far above any real node id, so the two id spaces never
/// collide.
pub const WALL_PROFILE_PID: u32 = 1_000_000;

/// Append the self-profiler's timeline as counter tracks under
/// [`WALL_PROFILE_PID`]. Timestamps are the ticks' *simulated* times;
/// the values are wall-clock derived (instantaneous events/s between
/// consecutive ticks) or occupancy snapshots (queue depth, staged batch,
/// wheel overflow, pool hit percentage).
fn append_wall_profile_tracks(tb: &mut TraceBuilder, p: &lossless_obs::prof::ProfSummary) {
    if p.ticks.is_empty() {
        return;
    }
    tb.process_name(WALL_PROFILE_PID, "engine wall-clock profile");
    let mut prev: Option<&lossless_obs::prof::ProfTick> = None;
    for t in &p.ticks {
        if let Some(q) = prev {
            let d_ev = t.events.saturating_sub(q.events);
            let d_ns = t.wall_ns.saturating_sub(q.wall_ns).max(1);
            let eps = (d_ev as f64 / (d_ns as f64 / 1e9)) as u64;
            tb.counter(WALL_PROFILE_PID, "wall.events_per_sec", t.t, eps);
        }
        tb.counter(WALL_PROFILE_PID, "wall.queue_len", t.t, t.queue_len);
        tb.counter(WALL_PROFILE_PID, "wall.queue_staged", t.t, t.queue_staged);
        tb.counter(
            WALL_PROFILE_PID,
            "wall.queue_overflow",
            t.t,
            t.queue_overflow,
        );
        if let Some(hit_pct) = (t.pool_hit * 100).checked_div(t.pool_hit + t.pool_miss) {
            tb.counter(WALL_PROFILE_PID, "wall.pool_hit_pct", t.t, hit_pct);
        }
        prev = Some(t);
    }
}

/// Render a finished run as Chrome-trace JSON. Deterministic: track
/// enumeration follows the sorted `(node, port, prio)` order and sample
/// order follows the trace.
pub fn perfetto_trace_json(sim: &Simulator) -> String {
    let mut tb = TraceBuilder::new();

    // Group port samples by track, preserving per-track time order.
    let mut tracks: BTreeMap<(u32, u16, u8), Vec<&PortSample>> = BTreeMap::new();
    for s in &sim.trace.port_samples {
        tracks
            .entry((s.node.0, s.port, s.prio))
            .or_default()
            .push(s);
    }

    let mut named_nodes: Vec<u32> = Vec::new();
    for (&(node, port, prio), samples) in &tracks {
        if !named_nodes.contains(&node) {
            named_nodes.push(node);
            tb.process_name(
                node,
                &format!(
                    "{} (node {node})",
                    sim.topology().name(lossless_netsim::NodeId(node))
                ),
            );
        }
        let st = state_tid(port, prio);
        let pt = paused_tid(port, prio);
        tb.thread_name(node, st, &format!("p{port}/{prio} state"));
        tb.thread_sort_index(node, st, i64::from(st));
        tb.thread_name(node, pt, &format!("p{port}/{prio} paused"));
        tb.thread_sort_index(node, pt, i64::from(pt));

        let counter = format!("queue p{port}/{prio} (bytes)");
        for s in samples {
            tb.counter(node, &counter, s.t, s.queue_bytes);
        }

        // Run-length encode the sampled ternary state and paused flag into
        // slices spanning [run start, run end sample].
        let mut run_start = 0usize;
        for i in 1..=samples.len() {
            let run_over = i == samples.len() || samples[i].state != samples[run_start].state;
            if run_over {
                tb.slice(
                    node,
                    st,
                    state_name(samples[run_start].state),
                    samples[run_start].t,
                    samples[i - 1].t,
                );
                run_start = i;
            }
        }
        let mut paused_since: Option<usize> = None;
        for (i, s) in samples.iter().enumerate() {
            match (s.paused, paused_since) {
                (true, None) => paused_since = Some(i),
                (false, Some(j)) => {
                    tb.slice(node, pt, "paused", samples[j].t, s.t);
                    paused_since = None;
                }
                _ => {}
            }
        }
        if let (Some(j), Some(last)) = (paused_since, samples.last()) {
            tb.slice(node, pt, "paused", samples[j].t, last.t);
        }
    }

    // Mark instants on the sampled ports (marks carry no priority, so the
    // track is per port). Requires `record_marks(true)` during the run.
    let sampled_ports: Vec<(u32, u16)> = {
        let mut v: Vec<(u32, u16)> = tracks.keys().map(|&(n, p, _)| (n, p)).collect();
        v.dedup();
        v
    };
    let mut mark_tracks_named: Vec<(u32, u16)> = Vec::new();
    for m in &sim.trace.marks {
        let key = (m.node.0, m.port);
        if !sampled_ports.contains(&key) {
            continue;
        }
        if !mark_tracks_named.contains(&key) {
            mark_tracks_named.push(key);
            let tid = mark_tid(m.port);
            tb.thread_name(m.node.0, tid, &format!("p{} marks", m.port));
            tb.thread_sort_index(m.node.0, tid, i64::from(tid));
        }
        tb.instant(
            m.node.0,
            mark_tid(m.port),
            lossless_obs::mark_counter_name(m.code),
            m.t,
        );
    }

    // Wall-clock self-profile tracks, for profiled runs only.
    if let Some(p) = sim.profile() {
        append_wall_profile_tracks(&mut tb, &p);
    }

    tb.to_json()
}

/// Render the run's metrics registry (engine counters folded in) as the
/// self-describing `tcd-metrics-v1` JSON document.
pub fn metrics_json(sim: &Simulator) -> String {
    sim.obs_registry().to_json()
}

/// Scenario names `tcdsim trace`/`tcdsim metrics` accept, with their
/// meanings. All are observation runs on the Figure-2 topology.
pub const SCENARIOS: [(&str, &str); 6] = [
    (
        "fig03",
        "CEE, single congestion point, binary detector (Fig. 3)",
    ),
    (
        "fig04",
        "CEE, multiple congestion points, binary detector (Fig. 4)",
    ),
    ("fig12", "CEE, single congestion point, TCD (Fig. 12)"),
    ("fig13", "CEE, multiple congestion points, TCD (Fig. 13)"),
    ("ib", "InfiniBand, single congestion point, binary detector"),
    ("ib-tcd", "InfiniBand, single congestion point, TCD"),
];

/// Run a named observation scenario for the exporters. `None` for an
/// unknown name; see [`SCENARIOS`].
pub fn run_scenario(
    name: &str,
    end: lossless_flowctl::SimTime,
) -> Option<crate::scenarios::observation::Run> {
    use crate::scenarios::observation::{run, Options};
    use crate::scenarios::Network;
    let (network, multi_cp, use_tcd) = match name {
        "fig03" => (Network::Cee, false, false),
        "fig04" => (Network::Cee, true, false),
        "fig12" => (Network::Cee, false, true),
        "fig13" => (Network::Cee, true, true),
        "ib" => (Network::Ib, false, false),
        "ib-tcd" => (Network::Ib, false, true),
        _ => return None,
    };
    Some(run(Options {
        network,
        multi_cp,
        use_tcd,
        end,
        ..Default::default()
    }))
}

/// Fault-injection and deadlock scenario names the exporters also
/// accept; see [`crate::scenarios::fault`]. The deadlock runs sample
/// every ring egress, so the exported trace carries the TCD ternary
/// timeline through wedge formation (and, for the recovery variant,
/// through the drain after the route revert).
pub const FAULT_SCENARIOS: [(&str, &str); 4] = [
    (
        "fault-flap-incast",
        "fat-tree incast with the victim edge's uplinks flapping mid-run",
    ),
    (
        "fault-degrade",
        "dumbbell with the receiver-side link degraded to 10 Gbps mid-transfer",
    ),
    (
        "deadlock-triangle",
        "3-switch CDC ring driven into genuine runtime PFC deadlock",
    ),
    (
        "deadlock-recovery",
        "the same ring, routes reverted at end/8 so the fabric drains",
    ),
];

/// Run a named fault or deadlock scenario for the exporters. `None` for
/// an unknown name; see [`FAULT_SCENARIOS`].
pub fn run_fault_scenario(name: &str, end: lossless_flowctl::SimTime) -> Option<Simulator> {
    use crate::scenarios::fault;
    use lossless_flowctl::SimTime;
    let mut sim = match name {
        "fault-flap-incast" => fault::flap_incast(end).0,
        "fault-degrade" => fault::degrade_recovery(end),
        "deadlock-triangle" => fault::deadlock_ring(3, end, None).sim,
        "deadlock-recovery" => {
            fault::deadlock_ring(3, end, Some(SimTime::from_ps(end.as_ps() / 8))).sim
        }
        _ => return None,
    };
    // The deadlock runs *provoke* a Liveness violation by design; in
    // audit builds the watchdog must record it, not abort the export.
    sim.record_violations();
    sim.run();
    Some(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lossless_flowctl::SimTime;
    use lossless_obs::perfetto::validate_chrome_trace;

    #[test]
    fn fig03_trace_is_valid_and_has_all_track_kinds() {
        let r = run_scenario("fig03", SimTime::from_us(600)).expect("known scenario");
        let doc = perfetto_trace_json(&r.sim);
        let n = validate_chrome_trace(&doc).expect("valid Chrome trace");
        assert!(n > 0, "trace must contain events");
        assert!(doc.contains("queue p"), "queue-depth counter track");
        assert!(doc.contains("state"), "ternary-state slice track");
        assert!(doc.contains("\"ph\":\"X\""), "slices present");
        assert!(doc.contains("\"ph\":\"C\""), "counters present");
    }

    #[test]
    fn fig03_metrics_dump_parses_and_self_describes() {
        let r = run_scenario("fig03", SimTime::from_us(600)).expect("known scenario");
        let doc = metrics_json(&r.sim);
        let v = lossless_obs::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("tcd-metrics-v1")
        );
        assert!(v.get("fingerprint").is_some());
        assert!(v.get("counters").and_then(|c| c.as_arr()).is_some());
        // The engine counters folded in by obs_registry.
        assert!(doc.contains("engine.events"));
        assert!(doc.contains("engine.dispatch.packet_arrival"));
        // Pool hit/miss counters are deliberately absent: they depend on
        // global allocation order, which partitioned runs cannot reproduce.
        assert!(!doc.contains("pool.hit"));
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(run_scenario("nope", SimTime::from_us(100)).is_none());
        assert!(run_fault_scenario("nope", SimTime::from_us(100)).is_none());
    }

    #[test]
    fn fault_scenarios_export_tcd_timelines_and_fault_counters() {
        let sim = run_fault_scenario("fault-degrade", SimTime::from_ms(2)).expect("known");
        let doc = perfetto_trace_json(&sim);
        validate_chrome_trace(&doc).expect("valid Chrome trace");
        assert!(doc.contains("state"), "TCD ternary-state track present");
        let metrics = metrics_json(&sim);
        assert!(metrics.contains("fault.degrade"), "onset counter exported");
        assert!(
            metrics.contains("fault.restore"),
            "recovery counter exported"
        );

        let sim = run_fault_scenario("deadlock-triangle", SimTime::from_us(400)).expect("known");
        let doc = perfetto_trace_json(&sim);
        validate_chrome_trace(&doc).expect("valid Chrome trace");
        assert!(doc.contains("state"), "ring egress timeline present");
        assert!(
            metrics_json(&sim).contains("fault.route_update"),
            "route swap exported"
        );
    }

    #[test]
    fn profiled_runs_export_wall_clock_tracks() {
        let end = SimTime::from_us(400);
        let mut sim = crate::scenarios::fault::deadlock_ring(3, end, None).sim;
        sim.enable_profiler(lossless_obs::prof::ProfConfig {
            sample_every: 4,
            tick_every: 256,
            max_ticks: 64,
        });
        sim.record_violations();
        sim.run();
        let profile = sim.profile().expect("profiler was armed");
        assert!(profile.sampled > 0, "spans were sampled");
        assert!(!profile.ticks.is_empty(), "timeline ticks were recorded");
        let doc = perfetto_trace_json(&sim);
        validate_chrome_trace(&doc).expect("valid Chrome trace");
        assert!(doc.contains("engine wall-clock profile"), "profile process");
        assert!(doc.contains("wall.events_per_sec"), "throughput track");
        assert!(doc.contains("wall.queue_len"), "occupancy track");
        // An unprofiled twin exports no wall tracks and computes the
        // identical results.
        let mut twin = crate::scenarios::fault::deadlock_ring(3, end, None).sim;
        twin.record_violations();
        twin.run();
        let twin_doc = perfetto_trace_json(&twin);
        assert!(!twin_doc.contains("wall."), "no wall tracks unprofiled");
        assert_eq!(
            crate::harness::fingerprint_sim(&sim),
            crate::harness::fingerprint_sim(&twin),
            "profiling must not perturb the run"
        );
    }

    #[test]
    fn exporting_never_perturbs_the_run() {
        let a = run_scenario("fig03", SimTime::from_us(400)).expect("known scenario");
        let _ = perfetto_trace_json(&a.sim);
        let _ = metrics_json(&a.sim);
        let b = run_scenario("fig03", SimTime::from_us(400)).expect("known scenario");
        assert_eq!(
            crate::harness::fingerprint_sim(&a.sim),
            crate::harness::fingerprint_sim(&b.sim)
        );
        assert_eq!(
            a.sim.obs_registry().fingerprint(),
            b.sim.obs_registry().fingerprint()
        );
    }
}
