//! Deterministic parallel experiment harness.
//!
//! The paper's evaluation is a large grid of independent simulator runs
//! (scenario × detector × CC algorithm × burst size × seed). Each run is
//! a pure function of its configuration — the engine's event queue breaks
//! timestamp ties by insertion order and every random draw derives from
//! the run's seed — so the grid parallelises trivially: a [`Sweep`] farms
//! the runs out to a fixed-size `std::thread` worker pool through a work
//! queue, writes every result into its submission-order slot, and merges
//! them into a [`SweepReport`] whose contents are **bit-identical at any
//! thread count**. Only wall-clock timings differ between thread counts,
//! and those are confined to the perf record
//! ([`SweepReport::write_bench_json`], conventionally `BENCH_sweep.json`);
//! the result report ([`SweepReport::to_json`]) contains deterministic
//! fields only.
//!
//! Worker threads are plain `std::thread::scope` threads — no external
//! dependencies — and the thread count comes from `--threads`, the
//! `TCD_THREADS` environment variable, or the machine's parallelism, in
//! that order (see [`default_threads`]).

use lossless_netsim::Simulator;
use lossless_stats::export::{json_f64, json_str};
use std::io::{IsTerminal as _, Write as _};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The deterministic product of one run: a fingerprint of everything the
/// simulation computed, the engine's event count, and named scalar
/// metrics the experiment wants to report.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// FNV-1a digest of the run's observable results (see
    /// [`fingerprint_sim`]).
    pub fingerprint: u64,
    /// Events the engine dispatched.
    pub events: u64,
    /// Named metrics, in insertion order (kept as a `Vec` so report
    /// ordering is exactly the experiment's ordering).
    pub metrics: Vec<(String, f64)>,
    /// The run's observability metrics registry (empty when observability
    /// is off). Deterministic, so it merges identically at any thread
    /// count.
    pub registry: lossless_obs::Registry,
    /// The run's wall-clock self-profile, when the simulator ran with the
    /// profiler armed (`TCD_PROF=1` or `Simulator::enable_profiler`).
    /// Machine-dependent by nature, so it is excluded from equality and
    /// from every deterministic report.
    pub perf: Option<lossless_obs::prof::ProfSummary>,
}

/// Equality covers the deterministic fields only: `perf` is wall-clock
/// data and differs between any two runs by construction.
impl PartialEq for RunOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.events == other.events
            && self.metrics == other.metrics
            && self.registry == other.registry
    }
}

impl RunOutcome {
    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// One run's result with its (non-deterministic) wall time.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The job id given to [`Sweep::add`].
    pub id: String,
    /// Deterministic outcome.
    pub outcome: RunOutcome,
    /// Wall-clock seconds this run took on its worker.
    pub wall_s: f64,
}

type JobFn = Box<dyn FnOnce() -> RunOutcome + Send>;

/// A set of independent runs to execute in parallel.
#[derive(Default)]
pub struct Sweep {
    jobs: Vec<(String, JobFn)>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Queue a run. `job` must be a pure function of its captured
    /// configuration (it runs on a worker thread; build the simulator
    /// *inside* the closure so no state leaks across runs).
    // simlint: allow(hot-path-alloc) -- sweep setup, one box per queued run; hot only by a name collision with Sweep::add
    pub fn add(
        &mut self,
        id: impl Into<String>,
        job: impl FnOnce() -> RunOutcome + Send + 'static,
    ) {
        self.jobs.push((id.into(), Box::new(job)));
    }

    /// Number of queued runs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep has no runs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute all runs on `threads` workers and merge the results in
    /// submission order. The merged report is identical for every
    /// `threads >= 1` except for wall-clock fields.
    ///
    /// While the sweep runs, workers report live progress on stderr —
    /// runs done, aggregate events/s, ETA from the mean per-run wall
    /// time, and pool utilization (busy worker time over elapsed ×
    /// threads). On by default when stderr is a terminal; `TCD_PROGRESS=1`
    /// forces it on (e.g. under a log collector), `TCD_PROGRESS=0` off.
    /// Progress is presentation only: it never touches results, so
    /// reports stay bit-identical with it on or off.
    pub fn run(self, threads: usize) -> SweepReport {
        let n = self.jobs.len();
        // Cap the pool so sweep threads x intra-run partition workers
        // never oversubscribes the machine: each job may itself fan out
        // over `partition_workers()` cores (TCD_PARTITIONS), and running
        // T x P threads on C < T x P cores slows *every* lane down.
        let pw = partition_workers();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = threads.max(1).min(n.max(1)).min((cores / pw).max(1));
        let started = Instant::now();

        // Work queue: an atomic cursor over submission-order slots. Each
        // worker claims the next un-run job and writes the result into
        // that job's slot, so the merge order is the submission order no
        // matter which worker ran what.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(String, JobFn)>>> =
            self.jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<RunResult>>> = (0..n).map(|_| Mutex::new(None)).collect();

        // Live-telemetry counters, shared by all workers.
        let done = AtomicUsize::new(0);
        let events_done = AtomicU64::new(0);
        let busy_ns = AtomicU64::new(0);
        let progress = progress_enabled() && n > 0;

        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (id, job) = slots[i].lock().unwrap().take().expect("job claimed twice");
                    let t0 = Instant::now();
                    let outcome = job();
                    let wall_s = t0.elapsed().as_secs_f64();
                    busy_ns.fetch_add((wall_s * 1e9) as u64, Ordering::Relaxed);
                    events_done.fetch_add(outcome.events, Ordering::Relaxed);
                    let k = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if progress {
                        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                        let eps = events_done.load(Ordering::Relaxed) as f64 / elapsed;
                        let eta = elapsed / k as f64 * (n - k) as f64;
                        let util = busy_ns.load(Ordering::Relaxed) as f64
                            / (elapsed * 1e9 * threads as f64);
                        eprintln!(
                            "  [{k}/{n}] {id}: {:.2}M events/s | {threads}x{pw} \
                             threads | {elapsed:.1}s elapsed, ETA {eta:.1}s, \
                             {:.0}% util",
                            eps / 1e6,
                            100.0 * util.min(1.0),
                        );
                    }
                    *results[i].lock().unwrap() = Some(RunResult {
                        id,
                        outcome,
                        wall_s,
                    });
                });
            }
        });

        let results: Vec<RunResult> = results
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("job did not run"))
            .collect();
        SweepReport {
            threads,
            total_wall_s: started.elapsed().as_secs_f64(),
            results,
        }
    }
}

/// Merged results of a [`Sweep`], in submission order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub total_wall_s: f64,
    /// Per-run results, in submission order.
    pub results: Vec<RunResult>,
}

impl SweepReport {
    /// FNV-1a digest over the per-run fingerprints, in order — one number
    /// that certifies the entire sweep reproduced.
    pub fn merged_fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        for r in &self.results {
            f.write_u64(r.outcome.fingerprint);
        }
        f.finish()
    }

    /// Total events dispatched across all runs.
    pub fn total_events(&self) -> u64 {
        self.results.iter().map(|r| r.outcome.events).sum()
    }

    /// Merge every run's metrics registry, in submission order. Counters
    /// and histograms add; gauges take the last writer. The merge order is
    /// the submission order regardless of which worker ran what, so the
    /// aggregate (and its fingerprint) is identical at any thread count.
    pub fn merged_registry(&self) -> lossless_obs::Registry {
        let mut reg = lossless_obs::Registry::new();
        for r in &self.results {
            reg.merge_from(&r.outcome.registry);
        }
        reg
    }

    /// Aggregate simulator throughput: total events over sweep wall time
    /// (so it reflects the parallel speed-up).
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_s > 0.0 {
            self.total_events() as f64 / self.total_wall_s
        } else {
            0.0
        }
    }

    /// The deterministic result report: ids, fingerprints, event counts
    /// and metrics — no timings. Byte-identical at any thread count.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"runs\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"fingerprint\": \"{:016x}\", \"events\": {}, \"metrics\": {{",
                json_str(&r.id),
                r.outcome.fingerprint,
                r.outcome.events,
            ));
            for (j, (k, v)) in r.outcome.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{}: {}", json_str(k), json_f64(*v)));
            }
            s.push_str(if i + 1 < self.results.len() {
                "}},\n"
            } else {
                "}}\n"
            });
        }
        s.push_str(&format!(
            "  ],\n  \"merged_fingerprint\": \"{:016x}\"\n}}\n",
            self.merged_fingerprint()
        ));
        s
    }

    /// Write [`to_json`](SweepReport::to_json) to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Write the perf record (conventionally `BENCH_sweep.json`): thread
    /// count, wall times and events/sec per run and in aggregate, plus
    /// the merged fingerprint so a perf record is traceable to the exact
    /// results it timed. `notes` are free-form key/value annotations
    /// (e.g. baseline numbers the current run is compared against).
    pub fn write_bench_json(
        &self,
        path: impl AsRef<std::path::Path>,
        label: &str,
        notes: &[(&str, &str)],
    ) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"label\": {},", json_str(label))?;
        if !notes.is_empty() {
            writeln!(f, "  \"notes\": {{")?;
            for (i, (k, v)) in notes.iter().enumerate() {
                writeln!(
                    f,
                    "    {}: {}{}",
                    json_str(k),
                    json_str(v),
                    if i + 1 < notes.len() { "," } else { "" },
                )?;
            }
            writeln!(f, "  }},")?;
        }
        writeln!(f, "  \"threads\": {},", self.threads)?;
        writeln!(f, "  \"total_wall_s\": {},", json_f64(self.total_wall_s))?;
        writeln!(f, "  \"total_events\": {},", self.total_events())?;
        writeln!(
            f,
            "  \"events_per_sec\": {},",
            json_f64(self.events_per_sec())
        )?;
        writeln!(
            f,
            "  \"merged_fingerprint\": \"{:016x}\",",
            self.merged_fingerprint()
        )?;
        writeln!(f, "  \"runs\": [")?;
        for (i, r) in self.results.iter().enumerate() {
            let eps = if r.wall_s > 0.0 {
                r.outcome.events as f64 / r.wall_s
            } else {
                0.0
            };
            writeln!(
                f,
                "    {{\"id\": {}, \"wall_s\": {}, \"events\": {}, \"events_per_sec\": {}}}{}",
                json_str(&r.id),
                json_f64(r.wall_s),
                r.outcome.events,
                json_f64(eps),
                if i + 1 < self.results.len() { "," } else { "" },
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(())
    }
}

/// Worker thread count: `TCD_THREADS` when set (clamped to ≥ 1), else
/// the machine's available parallelism divided by the intra-run
/// partition worker count, so sweep x partition parallelism together
/// fill the machine exactly once. An explicit `TCD_THREADS` always
/// wins — the operator asked for that many lanes.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TCD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / partition_workers()).max(1)
}

/// Intra-run partition workers each sweep job may spin up, per
/// `TCD_PARTITIONS` (the same knob the engine's parallel executor
/// reads). 1 — the serial default — when unset or malformed.
pub fn partition_workers() -> usize {
    std::env::var("TCD_PARTITIONS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Whether [`Sweep::run`] prints live progress to stderr: `TCD_PROGRESS=1`
/// forces it on, `TCD_PROGRESS=0` off; default is on iff stderr is a
/// terminal.
fn progress_enabled() -> bool {
    match std::env::var("TCD_PROGRESS") {
        Ok(v) => v.trim() != "0",
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// Wall-clock throughput measurement of one repeated simulator run: the
/// full per-repetition timing spread, not just the best. Produced by
/// [`timed_throughput`].
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Events the run dispatches (identical every repetition).
    pub events: u64,
    /// The run's fingerprint (identical every repetition — asserted by
    /// callers to certify the timed runs reproduced).
    pub fingerprint: u64,
    /// Wall-clock seconds of each timed repetition, in execution order.
    pub rep_wall_s: Vec<f64>,
}

impl Throughput {
    /// Repetition wall times sorted ascending.
    fn sorted(&self) -> Vec<f64> {
        let mut v = self.rep_wall_s.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        v
    }

    /// Best-repetition throughput (events over the fastest wall time) —
    /// the headline number: scheduler and frequency noise only ever slow
    /// a run down.
    pub fn best_eps(&self) -> f64 {
        self.events as f64 / self.sorted().first().copied().unwrap_or(f64::INFINITY)
    }

    /// Throughput of the median repetition.
    pub fn median_eps(&self) -> f64 {
        let s = self.sorted();
        if s.is_empty() {
            return 0.0;
        }
        self.events as f64 / s[s.len() / 2]
    }

    /// Throughput of the slowest repetition — the noise floor: a large
    /// best/worst gap flags a noisy box whose numbers should not drive
    /// regression conclusions.
    pub fn worst_eps(&self) -> f64 {
        self.events as f64 / self.sorted().last().copied().unwrap_or(f64::INFINITY)
    }

    /// Relative spread `(best - worst) / best` of the per-repetition
    /// throughput, 0.0 for a perfectly quiet box.
    pub fn spread(&self) -> f64 {
        let best = self.best_eps();
        if best > 0.0 {
            (best - self.worst_eps()) / best
        } else {
            0.0
        }
    }
}

/// Wall-clock throughput of one simulator run. `build` returns a fully
/// configured simulator that has not run yet; one warm run primes caches
/// and the allocator, then five identical runs are timed — `run()`
/// only, so topology and routing construction don't dilute the engine
/// number — and every repetition's wall time is kept, so callers can
/// report the min/median/max spread instead of silently discarding the
/// variance. Lives here because wall-clock access is confined to the
/// harness and bench code by the simlint determinism rules.
pub fn timed_throughput(build: impl Fn() -> Simulator) -> Throughput {
    let mut warm = build();
    warm.run();
    let mut reps = Vec::new();
    let mut sim = warm;
    for _ in 0..5 {
        sim = build();
        let t0 = Instant::now();
        sim.run();
        reps.push(t0.elapsed().as_secs_f64().max(1e-9));
    }
    Throughput {
        events: sim.trace.events,
        fingerprint: fingerprint_sim(&sim),
        rep_wall_s: reps,
    }
}

/// FNV-1a digest of everything a run observably computed: every flow's
/// lifecycle record plus the trace's aggregate counters. Two runs with
/// equal fingerprints delivered the same bytes with the same markings at
/// the same (picosecond) times.
pub fn fingerprint_sim(sim: &Simulator) -> u64 {
    let t = &sim.trace;
    let mut f = Fnv::new();
    for r in &t.flows {
        f.write_u64(r.flow.0 as u64);
        f.write_u64(r.size);
        f.write_u64(r.start.as_ps());
        f.write_u64(r.end.map(|e| e.as_ps()).unwrap_or(u64::MAX));
        f.write_u64(r.delivered.pkts);
        f.write_u64(r.delivered.bytes);
        f.write_u64(r.delivered.ce);
        f.write_u64(r.delivered.ue);
    }
    f.write_u64(t.forwarded_pkts);
    f.write_u64(t.pause_frames);
    f.write_u64(t.drops);
    f.write_u64(t.port_samples.len() as u64);
    f.write_u64(t.events);
    f.finish()
}

/// Build a [`RunOutcome`] from a finished simulator and its metrics.
pub fn outcome_of(sim: &Simulator, metrics: Vec<(String, f64)>) -> RunOutcome {
    RunOutcome {
        fingerprint: fingerprint_sim(sim),
        events: sim.trace.events,
        metrics,
        registry: sim.obs_registry(),
        perf: sim.profile(),
    }
}

// ---------------------------------------------------------------------------
// Perf-trajectory store: append-only BENCH_history.jsonl
// ---------------------------------------------------------------------------

/// One line of the append-only perf-trajectory store
/// (`BENCH_history.jsonl`): where the bench ran, what it measured and the
/// fingerprint tying the timing to exact results. Unlike the overwritten
/// `BENCH_sweep.json` snapshot, the store accumulates — one line per
/// bench invocation — so trends and noise bands are recoverable.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Seconds since the Unix epoch when the bench ran.
    pub unix_s: u64,
    /// Git commit the bench ran at (`TCD_COMMIT`, or `unknown`).
    pub commit: String,
    /// Bench scenario id, e.g. `fat_tree_k6_wheel`.
    pub scenario: String,
    /// Events the scenario dispatches.
    pub events: u64,
    /// Best-repetition throughput, events per second.
    pub events_per_sec: f64,
    /// Median-repetition throughput (noise-robust trend signal).
    pub median_eps: f64,
    /// Slowest-repetition throughput (the noise floor).
    pub worst_eps: f64,
    /// The scenario's run fingerprint, so entries are only compared
    /// against entries that computed the same results.
    pub fingerprint: u64,
    /// Compact wall-clock profile digest (JSON), when the bench ran with
    /// the profiler armed.
    pub profile: Option<String>,
}

impl HistoryEntry {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let profile = match &self.profile {
            Some(p) => p.clone(),
            None => "null".to_string(),
        };
        format!(
            "{{\"unix_s\": {}, \"commit\": {}, \"scenario\": {}, \"events\": {}, \
             \"events_per_sec\": {}, \"median_eps\": {}, \"worst_eps\": {}, \
             \"fingerprint\": \"{:016x}\", \"profile\": {}}}",
            self.unix_s,
            json_str(&self.commit),
            json_str(&self.scenario),
            self.events,
            json_f64(self.events_per_sec),
            json_f64(self.median_eps),
            json_f64(self.worst_eps),
            self.fingerprint,
            profile,
        )
    }

    /// Build an entry for `scenario` from a [`Throughput`] measurement,
    /// stamping the current time and the `TCD_COMMIT` commit id.
    pub fn from_throughput(
        scenario: &str,
        tp: &Throughput,
        profile: Option<String>,
    ) -> HistoryEntry {
        let unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        HistoryEntry {
            unix_s,
            commit: std::env::var("TCD_COMMIT").unwrap_or_else(|_| "unknown".to_string()),
            scenario: scenario.to_string(),
            events: tp.events,
            events_per_sec: tp.best_eps(),
            median_eps: tp.median_eps(),
            worst_eps: tp.worst_eps(),
            fingerprint: tp.fingerprint,
            profile,
        }
    }
}

/// Append `entries` to the JSONL store at `path`, creating it (and parent
/// directories) on first use.
pub fn append_history(
    path: impl AsRef<std::path::Path>,
    entries: &[HistoryEntry],
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for e in entries {
        writeln!(f, "{}", e.to_json_line())?;
    }
    Ok(())
}

/// Read the JSONL store at `path`, oldest first. Malformed lines are
/// skipped (the store survives partial writes); a missing file is an
/// empty history.
pub fn read_history(path: impl AsRef<std::path::Path>) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = lossless_obs::json::parse(line) else {
            continue;
        };
        let str_of = |k: &str| v.get(k).and_then(|x| x.as_str()).map(str::to_string);
        let num_of = |k: &str| v.get(k).and_then(|x| x.as_f64());
        let (Some(commit), Some(scenario), Some(eps)) = (
            str_of("commit"),
            str_of("scenario"),
            num_of("events_per_sec"),
        ) else {
            continue;
        };
        let fingerprint = str_of("fingerprint")
            .and_then(|s| u64::from_str_radix(&s, 16).ok())
            .unwrap_or(0);
        out.push(HistoryEntry {
            unix_s: num_of("unix_s").unwrap_or(0.0) as u64,
            commit,
            scenario,
            events: num_of("events").unwrap_or(0.0) as u64,
            events_per_sec: eps,
            median_eps: num_of("median_eps").unwrap_or(eps),
            worst_eps: num_of("worst_eps").unwrap_or(eps),
            fingerprint,
            profile: None,
        });
    }
    out
}

/// How many trailing entries the regression gate's median is taken over.
pub const HISTORY_WINDOW: usize = 8;

/// The noise-tolerant regression gate over the perf trajectory: for each
/// scenario in `fresh`, the fresh best-repetition events/s must be at
/// least `floor` (conventionally 0.9) times the trailing median of the
/// last [`HISTORY_WINDOW`] *comparable* stored entries — those with the
/// same scenario **and** the same fingerprint, so a run that legitimately
/// changed behaviour (new fingerprint) starts a fresh baseline instead of
/// tripping the gate. Returns every failure as a human-readable line;
/// empty means the gate passes.
pub fn history_gate(history: &[HistoryEntry], fresh: &[HistoryEntry], floor: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for f in fresh {
        let comparable: Vec<f64> = history
            .iter()
            .filter(|h| h.scenario == f.scenario && h.fingerprint == f.fingerprint)
            .map(|h| h.events_per_sec)
            .collect();
        if comparable.is_empty() {
            continue; // no baseline yet: first run or behaviour change
        }
        let window = &comparable[comparable.len().saturating_sub(HISTORY_WINDOW)..];
        let mut sorted = window.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
        let median = sorted[sorted.len() / 2];
        if f.events_per_sec < floor * median {
            failures.push(format!(
                "{}: {:.3}M events/s is below {:.0}% of the trailing median \
                 {:.3}M events/s ({} comparable entries)",
                f.scenario,
                f.events_per_sec / 1e6,
                floor * 100.0,
                median / 1e6,
                window.len(),
            ));
        }
    }
    failures
}

/// Render the perf trajectory as a per-scenario trend report: one line
/// per stored entry (oldest first) with commit, throughput spread and
/// fingerprint, followed by the trailing-median baseline the gate would
/// compare against.
pub fn history_report(history: &[HistoryEntry]) -> String {
    if history.is_empty() {
        return "perf history is empty\n".to_string();
    }
    let mut scenarios: Vec<&str> = history.iter().map(|h| h.scenario.as_str()).collect();
    scenarios.sort_unstable();
    scenarios.dedup();
    let mut out = String::new();
    for sc in scenarios {
        let entries: Vec<&HistoryEntry> = history.iter().filter(|h| h.scenario == sc).collect();
        out.push_str(&format!("{sc} ({} entries)\n", entries.len()));
        for e in &entries {
            out.push_str(&format!(
                "  {:<10} {:>8.3}M events/s (median {:>8.3}M, worst {:>8.3}M) fp {:016x}\n",
                &e.commit[..e.commit.len().min(10)],
                e.events_per_sec / 1e6,
                e.median_eps / 1e6,
                e.worst_eps / 1e6,
                e.fingerprint,
            ));
        }
        if let Some(last) = entries.last() {
            let base: Vec<&&HistoryEntry> = entries
                .iter()
                .filter(|h| h.fingerprint == last.fingerprint)
                .collect();
            let window = &base[base.len().saturating_sub(HISTORY_WINDOW)..];
            let mut eps: Vec<f64> = window.iter().map(|h| h.events_per_sec).collect();
            eps.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
            if !eps.is_empty() {
                out.push_str(&format!(
                    "  baseline: trailing median {:.3}M events/s over {} comparable entries\n",
                    eps[eps.len() / 2] / 1e6,
                    eps.len(),
                ));
            }
        }
    }
    out
}

/// Render a finished run as its canonical golden-trace text: the
/// fingerprint and aggregate counters, every flow's lifecycle record, and
/// the per-port state timeline (one line per port sample, in the paper's
/// `0`/`1`/`/` notation). The format is line-oriented and fully
/// deterministic so committed goldens can be diffed meaningfully — see
/// [`golden_diff`]. Times are raw picoseconds.
pub fn golden_trace(sim: &Simulator, label: &str) -> String {
    let t = &sim.trace;
    let mut s = String::new();
    s.push_str(&format!("# golden trace: {label}\n"));
    s.push_str(&format!("fingerprint {:016x}\n", fingerprint_sim(sim)));
    s.push_str(&format!("events {}\n", t.events));
    s.push_str(&format!("forwarded {}\n", t.forwarded_pkts));
    s.push_str(&format!("pauses {}\n", t.pause_frames));
    s.push_str(&format!("drops {}\n", t.drops));
    s.push_str(&format!(
        "completed {}/{}\n",
        t.completed_count,
        t.flows.len()
    ));
    for r in &t.flows {
        s.push_str(&format!(
            "flow {} size={} start={} end={} pkts={} bytes={} ce={} ue={}\n",
            r.flow.0,
            r.size,
            r.start.as_ps(),
            r.end.map(|e| e.as_ps() as i64).unwrap_or(-1),
            r.delivered.pkts,
            r.delivered.bytes,
            r.delivered.ce,
            r.delivered.ue,
        ));
    }
    for p in &t.port_samples {
        s.push_str(&format!(
            "port n{}p{}v{} t={} q={} tx={} state={} paused={}\n",
            p.node.0,
            p.port,
            p.prio,
            p.t.as_ps(),
            p.queue_bytes,
            p.tx_bytes,
            p.state.symbol(),
            u8::from(p.paused),
        ));
    }
    s
}

/// Compare an actual golden trace against the committed one. `None` when
/// identical; otherwise a readable report pinpointing the first diverging
/// line (the first event/sample where the runs part ways) with a few
/// lines of surrounding context from both sides.
pub fn golden_diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let n = exp.len().min(act.len());
    let first = (0..n).find(|&i| exp[i] != act[i]).unwrap_or(n);
    let mut out = String::new();
    out.push_str(&format!(
        "golden trace diverges at line {} ({} expected lines, {} actual)\n",
        first + 1,
        exp.len(),
        act.len(),
    ));
    let from = first.saturating_sub(3);
    for line in &exp[from..first] {
        out.push_str(&format!("        {line}\n"));
    }
    match (exp.get(first), act.get(first)) {
        (Some(e), Some(a)) => {
            out.push_str(&format!("expected {e}\n"));
            out.push_str(&format!("actual   {a}\n"));
        }
        (Some(e), None) => out.push_str(&format!("expected {e}\nactual   <end of trace>\n")),
        (None, Some(a)) => out.push_str(&format!("expected <end of trace>\nactual   {a}\n")),
        (None, None) => {}
    }
    Some(out)
}

/// Incremental FNV-1a (64-bit).
struct Fnv {
    h: u64,
}

impl Fnv {
    fn new() -> Fnv {
        Fnv {
            h: 0xcbf29ce484222325,
        }
    }

    fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_job(seed: u64) -> RunOutcome {
        // A deterministic stand-in for a simulator run.
        let mut h = Fnv::new();
        h.write_u64(seed);
        let mut registry = lossless_obs::Registry::new();
        registry.add(lossless_obs::Key::global("toy.events"), 100 + seed);
        RunOutcome {
            fingerprint: h.finish(),
            events: 100 + seed,
            metrics: vec![("seed".into(), seed as f64)],
            registry,
            perf: None,
        }
    }

    fn toy_sweep(n: u64) -> Sweep {
        let mut s = Sweep::new();
        for seed in 0..n {
            s.add(format!("run{seed}"), move || toy_job(seed));
        }
        s
    }

    #[test]
    fn results_stay_in_submission_order() {
        let rep = toy_sweep(16).run(4);
        let ids: Vec<&str> = rep.results.iter().map(|r| r.id.as_str()).collect();
        let want: Vec<String> = (0..16).map(|i| format!("run{i}")).collect();
        assert_eq!(ids, want.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let a = toy_sweep(9).run(1);
        let b = toy_sweep(9).run(3);
        let c = toy_sweep(9).run(64); // more threads than jobs
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_json(), c.to_json());
        assert_eq!(a.merged_fingerprint(), b.merged_fingerprint());
    }

    #[test]
    fn empty_sweep_runs() {
        let rep = Sweep::new().run(8);
        assert!(rep.results.is_empty());
        assert_eq!(rep.total_events(), 0);
    }

    #[test]
    fn metrics_round_trip() {
        let rep = toy_sweep(3).run(2);
        assert_eq!(rep.results[2].outcome.metric("seed"), Some(2.0));
        assert_eq!(rep.results[2].outcome.metric("missing"), None);
    }

    #[test]
    fn golden_diff_is_none_for_identical_traces() {
        let t = "# golden trace: x\nfingerprint 00\nevents 1\n";
        assert_eq!(golden_diff(t, t), None);
    }

    #[test]
    fn golden_diff_pinpoints_the_first_diverging_line() {
        let exp = "a\nb\nc\nd\n";
        let act = "a\nb\nX\nd\n";
        let d = golden_diff(exp, act).expect("must differ");
        assert!(d.contains("line 3"), "{d}");
        assert!(d.contains("expected c"), "{d}");
        assert!(d.contains("actual   X"), "{d}");
    }

    #[test]
    fn golden_diff_reports_truncation() {
        let d = golden_diff("a\nb\n", "a\n").expect("must differ");
        assert!(d.contains("<end of trace>"), "{d}");
    }

    #[test]
    fn throughput_spread_orders_min_median_max() {
        let tp = Throughput {
            events: 1_000_000,
            fingerprint: 0xabcd,
            rep_wall_s: vec![0.5, 0.2, 1.0, 0.25, 0.4],
        };
        assert_eq!(tp.best_eps(), 5_000_000.0); // fastest rep: 0.2 s
        assert_eq!(tp.median_eps(), 2_500_000.0); // median rep: 0.4 s
        assert_eq!(tp.worst_eps(), 1_000_000.0); // slowest rep: 1.0 s
        assert!(tp.best_eps() >= tp.median_eps() && tp.median_eps() >= tp.worst_eps());
        assert!((tp.spread() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn outcome_equality_ignores_the_perf_profile() {
        let a = toy_job(1);
        let mut b = toy_job(1);
        b.perf = Some(lossless_obs::prof::ProfSummary {
            sample_every: 64,
            events: 1,
            sampled: 1,
            wall_ns: 123,
            per_kind: Vec::new(),
            per_class: Vec::new(),
            ticks: Vec::new(),
            dropped_ticks: 0,
        });
        assert_eq!(a, b, "perf is machine noise, not part of the outcome");
    }

    #[test]
    fn history_round_trips_through_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "tcd_history_test_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("BENCH_history.jsonl");
        let entry = HistoryEntry {
            unix_s: 1_700_000_000,
            commit: "deadbeef".into(),
            scenario: "fat_tree_k6_wheel".into(),
            events: 7_377_645,
            events_per_sec: 7_240_498.0,
            median_eps: 7_100_000.0,
            worst_eps: 6_900_000.0,
            fingerprint: 0x1a6eae4701ee3f77,
            profile: Some("{\"sampled\": 10, \"sample_every\": 64, \"top\": []}".into()),
        };
        append_history(&path, std::slice::from_ref(&entry)).unwrap();
        append_history(&path, std::slice::from_ref(&entry)).unwrap();
        let read = read_history(&path);
        assert_eq!(read.len(), 2, "append-only: both writes survive");
        assert_eq!(read[0].scenario, entry.scenario);
        assert_eq!(read[0].fingerprint, entry.fingerprint);
        assert_eq!(read[0].events_per_sec, entry.events_per_sec);
        assert_eq!(read[0].median_eps, entry.median_eps);
        // The stored profile digest is opaque to the reader.
        assert_eq!(read[0].profile, None);
        assert!(history_report(&read).contains("fat_tree_k6_wheel"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_gate_flags_regressions_and_respects_fingerprints() {
        let mk = |eps: f64, fp: u64| HistoryEntry {
            unix_s: 0,
            commit: "c".into(),
            scenario: "bench".into(),
            events: 100,
            events_per_sec: eps,
            median_eps: eps,
            worst_eps: eps,
            fingerprint: fp,
            profile: None,
        };
        let history = vec![mk(100.0, 1), mk(110.0, 1), mk(105.0, 1)];
        // Above 0.9 × median(105): pass.
        assert!(history_gate(&history, &[mk(96.0, 1)], 0.9).is_empty());
        // Below the floor: fail.
        let failures = history_gate(&history, &[mk(80.0, 1)], 0.9);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("bench"), "{failures:?}");
        // Same speed but a different fingerprint: fresh baseline, pass.
        assert!(history_gate(&history, &[mk(80.0, 2)], 0.9).is_empty());
        // Unknown scenario: no baseline, pass.
        let mut other = mk(1.0, 1);
        other.scenario = "new".into();
        assert!(history_gate(&history, &[other], 0.9).is_empty());
    }

    #[test]
    fn merged_registry_is_submission_ordered_and_thread_invariant() {
        let a = toy_sweep(9).run(1);
        let b = toy_sweep(9).run(8);
        let ra = a.merged_registry();
        let rb = b.merged_registry();
        assert_eq!(ra, rb);
        assert_eq!(ra.fingerprint(), rb.fingerprint());
        // 9 toy runs, each contributing 100 + seed events.
        let want: u64 = (0..9).map(|s| 100 + s).sum();
        assert_eq!(ra.counter(lossless_obs::Key::global("toy.events")), want);
    }
}
