//! Umbrella crate for the TCD reproduction.
//!
//! Re-exports the workspace's crates and provides the shared experiment
//! scenario builders ([`scenarios`]) and plain-text reporting helpers
//! ([`report`]) used by the examples, the integration tests and the
//! per-figure experiment binaries in `crates/bench`.

#![forbid(unsafe_code)]

pub use lossless_cc as cc;
pub use lossless_flowctl as flowctl;
pub use lossless_netsim as netsim;
pub use lossless_obs as obs;
pub use lossless_stats as stats;
pub use lossless_workloads as workloads;
pub use tcd_core as tcd;

pub mod harness;
pub mod lintspec;
pub mod obs_export;
pub mod report;
pub mod scenarios;
