//! Named scenario specs for the static topology analyzer (`tcdsim lint`).
//!
//! Bridges the experiment scenarios in [`crate::scenarios`] to
//! [`simlint::TopoSpec`]: each name maps to the topology + configuration +
//! route selection a committed experiment or golden trace actually runs
//! with, so `tcdsim lint --topo <name>` (and the CI gate, which runs every
//! committed name) analyzes exactly what the simulator would execute.
//!
//! The extra *seeded-bad* specs are deliberately broken — cyclic
//! up-down-violating rings, a headroom-starved long-haul dumbbell, and a
//! baseline-clean ring whose fault plan swaps routes into a cycle. They
//! are excluded from the committed set; naming them explicitly makes
//! `tcdsim lint` exit non-zero, which the test suite relies on.

use lossless_flowctl::pfc::PfcConfig;
use lossless_flowctl::{Rate, SimDuration, SimTime};
use lossless_netsim::config::FlowControlMode;
use lossless_netsim::routing::RouteSelect;
use lossless_netsim::topology::{
    dumbbell, fat_tree, figure2, leaf_spine, testbed_compact, Figure2Options, Topology,
};
use simlint::TopoSpec;

use crate::scenarios::{default_config, Network};

/// Scenario names whose specs must analyze clean — the golden-trace set
/// plus every other committed experiment topology. CI runs all of them.
pub const COMMITTED: [&str; 10] = [
    "cee-single-cp",
    "cee-multi-cp",
    "ib-single-cp",
    "incast-victim",
    "fat-tree-k4",
    "fat-tree-k6",
    "hpc-fat-tree-k4",
    "testbed-compact",
    "fairness",
    "leaf-spine",
];

/// Deliberately broken specs (never part of the CI-clean set).
pub const SEEDED_BAD: [&str; 4] = [
    "seeded-cyclic-triangle",
    "seeded-cyclic-square",
    "seeded-headroom-starved",
    "seeded-fault-route-swap",
];

/// The paper's default link parameters (40 Gbps, 4 µs).
fn paper_link() -> (Rate, SimDuration) {
    (Rate::from_gbps(40), SimDuration::from_us(4))
}

/// Analysis ignores the end time; any value works.
fn end() -> SimTime {
    SimTime::from_ms(1)
}

/// The deliberately deadlock-prone triangle: three switches in a ring, one
/// host each, with route overrides sending every pair "the long way round"
/// — the classic cyclic buffer dependency that up-down routing exists to
/// prevent (DCFIT's motivating example).
fn cyclic_triangle() -> TopoSpec {
    let mut b = Topology::builder();
    let (r, d) = paper_link();
    let s: Vec<_> = (0..3).map(|i| b.switch(format!("s{i}"))).collect();
    let h: Vec<_> = (0..3).map(|i| b.host(format!("h{i}"))).collect();
    for i in 0..3 {
        b.link(h[i], s[i], r, d);
        b.link(s[i], s[(i + 1) % 3], r, d);
    }
    let topo = b.build();
    let mut spec = TopoSpec::new(
        "seeded-cyclic-triangle",
        topo,
        default_config(Network::Cee, false, end()),
        RouteSelect::Ecmp,
    );
    spec.route_overrides = vec![
        (h[0], h[2], vec![h[0], s[0], s[1], s[2], h[2]]),
        (h[1], h[0], vec![h[1], s[1], s[2], s[0], h[0]]),
        (h[2], h[1], vec![h[2], s[2], s[0], s[1], h[1]]),
    ];
    spec
}

/// The four-switch variant of the cyclic ring: each host sends two hops
/// clockwise, so every inter-switch link depends on the next one around
/// the square. A second, larger CDC cycle for the runtime deadlock suite.
fn cyclic_square() -> TopoSpec {
    let mut b = Topology::builder();
    let (r, d) = paper_link();
    let s: Vec<_> = (0..4).map(|i| b.switch(format!("s{i}"))).collect();
    let h: Vec<_> = (0..4).map(|i| b.host(format!("h{i}"))).collect();
    for i in 0..4 {
        b.link(h[i], s[i], r, d);
        b.link(s[i], s[(i + 1) % 4], r, d);
    }
    let topo = b.build();
    let mut spec = TopoSpec::new(
        "seeded-cyclic-square",
        topo,
        default_config(Network::Cee, false, end()),
        RouteSelect::Ecmp,
    );
    spec.route_overrides = (0..4)
        .map(|i| {
            (
                h[i],
                h[(i + 2) % 4],
                vec![h[i], s[i], s[(i + 1) % 4], s[(i + 2) % 4], h[(i + 2) % 4]],
            )
        })
        .collect();
    spec
}

/// The baseline-acyclic ring whose *fault plan* swaps routes into a
/// cycle: same construction as `scenarios::fault::deadlock_ring(3, ..)`
/// (each host rerouted two hops clockwise at t=0 via `route_sets[0]`).
/// The baseline ECMP routes are clean — only the fault-plan composition
/// pass catches this one, cross-checked at runtime by the PFC-deadlock
/// watchdog.
fn fault_route_swap() -> TopoSpec {
    let mut b = Topology::builder();
    let (r, d) = paper_link();
    let s: Vec<_> = (0..3).map(|i| b.switch(format!("s{i}"))).collect();
    let h: Vec<_> = (0..3).map(|i| b.host(format!("h{i}"))).collect();
    for i in 0..3 {
        b.link(h[i], s[i], r, d);
        b.link(s[i], s[(i + 1) % 3], r, d);
    }
    let topo = b.build();
    let mut cfg = default_config(Network::Cee, true, end());
    cfg.fault_plan.route_sets.push(
        (0..3)
            .map(|i| vec![h[i], s[i], s[(i + 1) % 3], s[(i + 2) % 3], h[(i + 2) % 3]])
            .collect(),
    );
    cfg.fault_plan.route_change(SimTime::ZERO, Some(0));
    TopoSpec::new("seeded-fault-route-swap", topo, cfg, RouteSelect::Ecmp)
}

/// A PFC dumbbell whose rate·delay product needs far more PAUSE headroom
/// than is provisioned: 100 Gbps over 100 µs links wants ~2.5 MB above
/// `X_off`, an order of magnitude past the 96 KiB the audit layer models.
fn headroom_starved() -> TopoSpec {
    let db = dumbbell(Rate::from_gbps(100), SimDuration::from_us(100));
    TopoSpec::new(
        "seeded-headroom-starved",
        db.topo,
        default_config(Network::Cee, false, end()),
        RouteSelect::Ecmp,
    )
}

/// Build the spec for a scenario name; `None` for unknown names.
pub fn build(name: &str) -> Option<TopoSpec> {
    let (r, d) = paper_link();
    let spec = match name {
        // Figure-2 observation scenarios: single vs multiple congestion
        // points differ only in traffic, not in topology or flow control.
        "cee-single-cp" | "cee-multi-cp" => TopoSpec::new(
            name,
            figure2(Figure2Options::default()).topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        "ib-single-cp" => TopoSpec::new(
            name,
            figure2(Figure2Options::default()).topo,
            default_config(Network::Ib, false, end()),
            Network::Ib.routing(),
        ),
        // §5.1.3 victim scenario: 20 Gbps sender edges.
        "incast-victim" => TopoSpec::new(
            name,
            figure2(Figure2Options {
                s_edge_rate: Some(Rate::from_gbps(20)),
                ..Default::default()
            })
            .topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        "fat-tree-k4" => TopoSpec::new(
            name,
            fat_tree(4, r, d).topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        "fat-tree-k6" => TopoSpec::new(
            name,
            fat_tree(6, r, d).topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        // §5.2.2-style HPC setup: InfiniBand + D-mod-k on a fat-tree.
        "hpc-fat-tree-k4" => TopoSpec::new(
            name,
            fat_tree(4, r, d).topo,
            default_config(Network::Ib, false, end()),
            RouteSelect::DModK,
        ),
        // §5.1.1 DPDK testbed: 10 Gbps, 1 µs, 800/770 KB PFC thresholds.
        "testbed-compact" => {
            let rate = Rate::from_gbps(10);
            let delay = SimDuration::from_us(1);
            let mut cfg = default_config(Network::Cee, false, end());
            cfg.flow_control = FlowControlMode::Pfc(PfcConfig::paper_testbed());
            TopoSpec::new(
                name,
                testbed_compact(rate, delay).topo,
                cfg,
                Network::Cee.routing(),
            )
        }
        // §5.2.4 fairness: Figure 2 plus the B hosts.
        "fairness" => TopoSpec::new(
            name,
            figure2(Figure2Options {
                with_b_hosts: true,
                ..Default::default()
            })
            .topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        "leaf-spine" => TopoSpec::new(
            name,
            leaf_spine(3, 2, 4, r, d).topo,
            default_config(Network::Cee, false, end()),
            Network::Cee.routing(),
        ),
        "seeded-cyclic-triangle" => cyclic_triangle(),
        "seeded-cyclic-square" => cyclic_square(),
        "seeded-headroom-starved" => headroom_starved(),
        "seeded-fault-route-swap" => fault_route_swap(),
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        for name in COMMITTED.iter().chain(SEEDED_BAD.iter()) {
            assert!(build(name).is_some(), "spec {name} should build");
        }
        assert!(build("no-such-scenario").is_none());
    }
}
